"""The synchronous round engine.

Execution of one round proceeds in the order required by the full-information
adversary model (Section 2):

1. every honest node's protocol is invoked with the messages delivered at the
   end of the previous round and produces its outbox (thereby fixing the
   honest random choices of the round);
2. the adversary observes all honest states and all honest outboxes and then
   produces the Byzantine outboxes;
3. all messages are delivered, each stamped with the true index and ID of the
   adjacent sender (unforgeable edge identity);
4. metrics are updated and the termination condition is evaluated.

The engine is protocol-agnostic: Algorithm 1, Algorithm 2, and every baseline
run on it unchanged.

Hot-path layout
---------------
The run loop is *array-slotted*: protocols and contexts live in dense lists
indexed by node, an **active list** of non-halted nodes shrinks as protocols
halt (halting is permanent -- see :attr:`Protocol.halted` -- so halted nodes
are never re-tested), and decisions are recorded incrementally as each
protocol runs instead of re-scanning every protocol every round.

Delivery is *inverted* for the dominant all-broadcast case: instead of
appending one envelope per edge into per-target dict buckets, the engine
stores each sender's single shared envelope in a dense per-sender array and
each receiver materializes its inbox with one pass over its (sorted) neighbor
tuple.  Targeted sends -- Byzantine outboxes, or rounds in which some honest
node produced a non-broadcast outbox -- fall back to the classic per-target
delivery, preserving exact delivery order (ascending honest senders first,
then Byzantine senders).
"""

from __future__ import annotations

import random
from bisect import insort
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.simulator.byzantine import Adversary, AdversaryView, ByzantineOutbox, SilentAdversary
from repro.simulator.churn import ChurnSchedule, TopologyDelta
from repro.simulator.messages import DeliveredMessage, Message
from repro.simulator.metrics import NodeMessageStats, SimulationMetrics
from repro.simulator.network import Network
from repro.simulator.node import Broadcast, NodeContext, Outbox, Protocol
from repro.simulator.rng import split_seed

__all__ = ["SynchronousEngine", "RunResult"]

#: Factory producing a fresh protocol instance for an honest node.
ProtocolFactory = Callable[[NodeContext], Protocol]


@dataclass
class RunResult:
    """Outcome of a simulation run.

    ``departed`` holds the nodes that left via churn and had not rejoined by
    the end of the run.  A departed honest node is *not* halted: its protocol
    entry in ``protocols`` is the state frozen at departure (or, after a
    rejoin, the fresh instance spawned on rejoin).
    """

    network: Network
    rounds_executed: int
    protocols: Dict[int, Protocol]
    metrics: SimulationMetrics
    completed: bool
    departed: FrozenSet[int] = field(default_factory=frozenset)

    @property
    def honest_nodes(self) -> Tuple[int, ...]:
        """Indices of honest nodes."""
        return self.network.honest

    def estimates(self) -> Dict[int, Optional[float]]:
        """Map from honest node to its decided estimate (None if undecided)."""
        return {u: p.estimate if p.decided else None for u, p in self.protocols.items()}

    def decided_fraction(self) -> float:
        """Fraction of honest nodes that decided."""
        if not self.protocols:
            return 0.0
        decided = sum(1 for p in self.protocols.values() if p.decided)
        return decided / len(self.protocols)


class SynchronousEngine:
    """Round-synchronous executor for one protocol over one network."""

    def __init__(
        self,
        network: Network,
        protocol_factory: ProtocolFactory,
        *,
        adversary: Optional[Adversary] = None,
        seed: int = 0,
        max_rounds: int = 100_000,
        stop_condition: Optional[Callable[[Dict[int, Protocol], int], bool]] = None,
        churn: Optional[ChurnSchedule] = None,
    ) -> None:
        """Create an engine.

        Parameters
        ----------
        network:
            The network (graph + Byzantine set) to execute on.
        protocol_factory:
            Called once per honest node with that node's :class:`NodeContext`
            to build its protocol instance.
        adversary:
            Byzantine behaviour; defaults to :class:`SilentAdversary`.
        seed:
            Master seed; per-node and adversary randomness is derived from it.
        max_rounds:
            Hard cap on the number of rounds (safety net).
        stop_condition:
            Optional predicate ``(protocols, round) -> bool``; when true the
            run stops.  The default stops when every honest node reports
            ``halted``.
        churn:
            Optional :class:`ChurnSchedule` of mid-run topology deltas.  The
            delta for round ``r`` is applied after the stop check and before
            the honest phase of round ``r``, so protocols see the changed
            topology for the whole round.  ``None`` (and the empty schedule)
            takes the exact static code paths.
        """
        self.network = network
        self.protocol_factory = protocol_factory
        self.adversary = adversary if adversary is not None else SilentAdversary()
        self.seed = seed
        self.max_rounds = max_rounds
        self.stop_condition = stop_condition
        self.churn = churn if churn else None

        graph = network.graph
        adjacency = graph.adjacency
        node_ids = graph.node_ids
        # Unified per-graph neighbor table, built once and shared by the
        # protocol contexts, outbox validation, and the adversary edge
        # filter: ``_neighbors[u]`` is the graph's own sorted neighbor tuple,
        # ``_neighbor_sets[u]`` the matching frozenset, and
        # ``_neighbor_ids[u]`` the neighbor-index -> identifier map.
        # Under churn the outer list is copied so that per-slot rewrites
        # never touch the graph's own adjacency; the static path keeps the
        # shared reference (the table is never written to).
        self._neighbors: List[Tuple[int, ...]] = (
            list(adjacency) if self.churn is not None else adjacency
        )
        self._neighbor_sets: List[FrozenSet[int]] = [
            frozenset(nbrs) for nbrs in adjacency
        ]
        self._neighbor_ids: List[Dict[int, int]] = [
            {v: node_ids[v] for v in nbrs} for nbrs in adjacency
        ]
        self._contexts: Dict[int, NodeContext] = {}
        self._protocols: Dict[int, Protocol] = {}
        for u in network.honest:
            ctx = NodeContext(
                index=u,
                node_id=node_ids[u],
                neighbors=adjacency[u],
                neighbor_ids=self._neighbor_ids[u],
                rng=random.Random(split_seed(seed, "node", u)),
                round=0,
            )
            self._contexts[u] = ctx
            self._protocols[u] = protocol_factory(ctx)
        self._adversary_rng = random.Random(split_seed(seed, "adversary"))
        self.adversary.setup(graph, network.byzantine, self._adversary_rng)
        self.metrics = SimulationMetrics()

    # ------------------------------------------------------------------ #
    @property
    def protocols(self) -> Dict[int, Protocol]:
        """Live honest protocol objects (read access, also used by adversaries)."""
        return self._protocols

    @property
    def decided_count(self) -> int:
        """Number of honest nodes whose decision has been recorded (O(1)).

        Maintained incrementally as protocols run; stop conditions can test
        "all decided" against ``len(engine.protocols)`` without scanning every
        protocol every round.
        """
        return len(self.metrics.decision_rounds)

    def _validate_outbox(self, sender: int, outbox: Outbox) -> Outbox:
        """Drop messages addressed to non-neighbors (protocol bug guard)."""
        if not outbox:
            return outbox
        if isinstance(outbox, Broadcast):
            # The common fast path: a broadcast built straight from
            # ``ctx.neighbors`` is valid by construction (the tuple is the
            # engine's own); anything else is filtered per target.
            if outbox.targets is self._contexts[sender].neighbors:
                return outbox
            valid_targets = self._neighbor_sets[sender]
            targets = tuple(t for t in outbox.targets if t in valid_targets)
            return Broadcast(outbox.message, targets) if targets else {}
        valid_targets = self._neighbor_sets[sender]
        cleaned: Dict[int, List[Message]] = {}
        for target, msgs in outbox.items():
            if target in valid_targets and msgs:
                cleaned[target] = list(msgs)
        return cleaned

    def run(self, max_rounds: Optional[int] = None) -> RunResult:
        """Execute the protocol until termination and return the result."""
        graph = self.network.graph
        n = graph.n
        node_ids = graph.node_ids
        limit = max_rounds if max_rounds is not None else self.max_rounds
        stop = self.stop_condition
        metrics = self.metrics
        record_broadcast = metrics.record_broadcast
        decision_rounds = metrics.decision_rounds
        nbrs = self._neighbors
        protocols_map = self._protocols
        byzantine = self.network.byzantine
        track_adversary = bool(byzantine)

        # Dense per-node slots; the active list holds the non-halted honest
        # nodes in ascending order and shrinks as protocols halt.
        proto_list: List[Optional[Protocol]] = [None] * n
        ctx_list: List[Optional[NodeContext]] = [None] * n
        for u, protocol in protocols_map.items():
            proto_list[u] = protocol
            ctx_list[u] = self._contexts[u]
        active: List[int] = list(protocols_map)

        # Churn state.  ``departed`` holds currently-absent nodes,
        # ``pending_start`` honest joiners awaiting their start callback;
        # both stay empty (and cost nothing) in static runs.
        churn = self.churn
        churn_last = churn.last_round if churn is not None else 0
        departed: Set[int] = set()
        pending_start: Set[int] = set()

        # Honest outboxes as shown to the adversary: one persistent dict in
        # honest-node order whose entries are refreshed for active nodes
        # (halted nodes keep their {} entry); a shallow per-round snapshot is
        # handed to the adversary view.
        adv_outboxes: Dict[int, Outbox] = (
            {u: {} for u in protocols_map} if track_adversary else {}
        )

        # Delivery state of the *previous* round.  ``env[v]`` holds v's
        # shared broadcast envelope (inverted delivery), ``extra`` the
        # targeted envelopes appended after the broadcasts; ``slow`` replaces
        # both with classic per-target buckets whenever some honest outbox
        # was not a full-neighborhood broadcast.
        env: List[Optional[DeliveredMessage]] = [None] * n
        extra: Dict[int, List[Message]] = {}
        slow: Optional[Dict[int, List[Message]]] = None

        def run_phase(round_number: int, nodes: List[int], start: bool) -> Tuple[
            List[Tuple[int, Outbox]], bool, bool
        ]:
            """Run one honest phase; returns (deliveries, fast, any_halted)."""
            deliveries: List[Tuple[int, Outbox]] = []
            fast = True
            any_halted = False
            for u in nodes:
                protocol = proto_list[u]
                ctx = ctx_list[u]
                ctx.round = round_number
                if start:
                    outbox = protocol.on_start(ctx)
                elif pending_start and u in pending_start:
                    # A node that joined via churn this round runs its start
                    # callback in place of a regular round (it has no inbox
                    # yet); churn-free runs never populate ``pending_start``.
                    pending_start.discard(u)
                    outbox = protocol.on_start(ctx)
                else:
                    if slow is not None:
                        inbox = slow.get(u, [])
                    else:
                        inbox = [e for v in nbrs[u] if (e := env[v]) is not None]
                        ex = extra.get(u)
                        if ex:
                            inbox += ex
                    outbox = protocol.on_round(ctx, inbox)
                # Dispatch without ever calling ``Broadcast.__bool__``: the
                # dominant case is a full-neighborhood Broadcast built from
                # the engine's own neighbor tuple, valid by construction.
                if type(outbox) is Broadcast:
                    targets = outbox.targets
                    if targets is ctx.neighbors:
                        if targets:
                            deliveries.append((u, outbox))
                    else:
                        outbox = self._validate_outbox(u, outbox)
                        if outbox:
                            fast = False
                            deliveries.append((u, outbox))
                elif outbox:
                    outbox = self._validate_outbox(u, outbox)
                    if outbox:
                        fast = False
                        deliveries.append((u, outbox))
                else:
                    outbox = {}
                if track_adversary:
                    adv_outboxes[u] = outbox
                if u not in decision_rounds and protocol.decided:
                    decision_rounds[u] = round_number
                if protocol.halted:
                    any_halted = True
            return deliveries, fast, any_halted

        def deliver_fast(
            deliveries: List[Tuple[int, Outbox]]
        ) -> List[Optional[DeliveredMessage]]:
            """Inverted delivery: one shared envelope per broadcasting sender.

            Receivers materialize their inboxes with one pass over their
            neighbor tuples, so a broadcast round costs one envelope and one
            accounting update per *sender* here plus one C-speed list
            comprehension per *receiver*, instead of per-edge dict bucket
            updates.  The metrics totals are accumulated locally and flushed
            once per round (``record_broadcast``, inlined and batched).
            """
            new_env: List[Optional[DeliveredMessage]] = [None] * n
            if not deliveries:
                return new_env
            per_node = metrics.per_node
            round_messages = 0
            round_bits = 0
            for u, outbox in deliveries:
                message = outbox.message
                stamped = DeliveredMessage(message, u, node_ids[u])
                new_env[u] = stamped
                copies = len(outbox.targets)
                bits = message.size_bits
                ids = message.num_ids
                round_messages += copies
                round_bits += bits * copies
                stats = per_node.get(u)
                if stats is None:
                    stats = per_node[u] = NodeMessageStats()
                stats.messages_sent += copies
                stats.bits_sent += bits * copies
                stats.ids_sent += ids * copies
                if bits > stats.max_message_bits:
                    stats.max_message_bits = bits
                if ids > stats.max_message_ids:
                    stats.max_message_ids = ids
            metrics.total_messages += round_messages
            metrics.total_bits += round_bits
            metrics.messages_per_round[-1] += round_messages
            return new_env

        def deliver_targeted(
            byz_outboxes: ByzantineOutbox, buckets: Dict[int, List[Message]]
        ) -> None:
            """Classic per-target delivery of Byzantine outboxes into buckets."""
            for b, per_target in byz_outboxes.items():
                sender_id = node_ids[b]
                envelopes: Dict[int, List] = {}
                for target, msgs in per_target.items():
                    bucket = buckets.get(target)
                    if bucket is None:
                        bucket = buckets[target] = []
                    for msg in msgs:
                        entry = envelopes.get(id(msg))
                        if entry is None:
                            entry = envelopes[id(msg)] = [
                                DeliveredMessage(msg, b, sender_id),
                                0,
                            ]
                        entry[1] += 1
                        bucket.append(entry[0])
                for stamped, copies in envelopes.values():
                    record_broadcast(b, stamped, copies)

        def deliver_slow(
            deliveries: List[Tuple[int, Outbox]], byz_outboxes: ByzantineOutbox
        ) -> Dict[int, List[Message]]:
            """Classic delivery for rounds with non-broadcast honest outboxes.

            One envelope per distinct outbox message: a broadcast that puts
            the same Message object in every target's list is delivered as a
            single shared, sender-stamped envelope instead of one clone per
            edge, and is accounted once with its delivery count.  Delivered
            messages are read-only by contract.
            """
            inboxes: Dict[int, List[Message]] = {}

            def deliver_from(sender: int, outbox: Mapping[int, List[Message]]) -> None:
                sender_id = node_ids[sender]
                if isinstance(outbox, Broadcast):
                    targets = outbox.targets
                    if not targets:
                        return
                    stamped = DeliveredMessage(outbox.message, sender, sender_id)
                    for target in targets:
                        bucket = inboxes.get(target)
                        if bucket is None:
                            bucket = inboxes[target] = []
                        bucket.append(stamped)
                    record_broadcast(sender, stamped, len(targets))
                    return
                envelopes: Dict[int, List] = {}
                for target, msgs in outbox.items():
                    bucket = inboxes.get(target)
                    if bucket is None:
                        bucket = inboxes[target] = []
                    for msg in msgs:
                        entry = envelopes.get(id(msg))
                        if entry is None:
                            entry = envelopes[id(msg)] = [
                                DeliveredMessage(msg, sender, sender_id),
                                0,
                            ]
                        entry[1] += 1
                        bucket.append(entry[0])
                for stamped, copies in envelopes.values():
                    record_broadcast(sender, stamped, copies)

            for sender, outbox in deliveries:
                deliver_from(sender, outbox)
            for sender, outbox in byz_outboxes.items():
                if outbox:
                    deliver_from(sender, outbox)
            return inboxes

        def adversary_step(round_number: int) -> ByzantineOutbox:
            if not track_adversary:
                return {}
            # Byzantine inboxes are materialized from the previous round's
            # delivery state exactly like honest inboxes.
            byz_inboxes: Dict[int, List[Message]] = {}
            for b in byzantine:
                if slow is not None:
                    byz_inboxes[b] = slow.get(b, [])
                else:
                    inbox = [e for v in nbrs[b] if (e := env[v]) is not None]
                    ex = extra.get(b)
                    if ex:
                        inbox += ex
                    byz_inboxes[b] = inbox
            # Departed nodes are invisible to the adversary: no protocol
            # state, no outbox entry (``adv_outboxes`` already dropped the
            # key at departure).  Static runs never take the filtered branch.
            honest_protocols = protocols_map
            if departed:
                honest_protocols = {
                    u: p for u, p in protocols_map.items() if u not in departed
                }
            view = AdversaryView(
                round=round_number,
                graph=graph,
                byzantine=byzantine,
                honest_protocols=honest_protocols,
                honest_outboxes=dict(adv_outboxes),
                byzantine_inboxes=byz_inboxes,
                rng=self._adversary_rng,
            )
            raw = self.adversary.act(view) or {}
            # Byzantine nodes may only use their own incident edges.
            cleaned: ByzantineOutbox = {}
            neighbor_sets = self._neighbor_sets
            for b, per_target in raw.items():
                if b not in byzantine:
                    continue
                valid_targets = neighbor_sets[b]
                cleaned[b] = {
                    t: list(msgs)
                    for t, msgs in per_target.items()
                    if t in valid_targets and msgs
                }
            return cleaned

        def compact_active(nodes: List[int]) -> List[int]:
            """Drop newly halted nodes; their adversary-visible outbox
            becomes {} from the next round on (they no longer send), exactly
            as when the old engine re-tested every node every round."""
            still_active: List[int] = []
            for u in nodes:
                if proto_list[u].halted:
                    if track_adversary:
                        adv_outboxes[u] = {}
                else:
                    still_active.append(u)
            return still_active

        def apply_delta(round_number: int, delta: TopologyDelta) -> None:
            """Apply one round's topology delta to every shared table.

            Order matters: leaves first (cutting their incident edges),
            then scheduled edge removals, then joins become eligible edge
            endpoints, then edge additions, then fresh protocol slots are
            spawned for honest joiners reading the final neighbor tables.
            A node cannot leave and rejoin within the same delta (joins are
            resolved against the departed set *before* the leaves apply).
            """
            neighbor_sets = self._neighbor_sets
            neighbor_ids = self._neighbor_ids
            neighbors = self._neighbors
            added_map: Dict[int, Dict[int, int]] = {}
            removed_map: Dict[int, Dict[int, int]] = {}
            events = 0

            def check_index(u: int) -> int:
                if not 0 <= u < n:
                    raise ValueError(
                        f"churn delta for round {round_number} references node "
                        f"index {u}, outside the graph's range [0, {n})"
                    )
                return u

            def purge_in_flight(receiver: int, sender: int) -> None:
                # Drop last round's not-yet-consumed envelopes crossing the
                # removed edge.  Inverted (fast) delivery drops the broadcast
                # automatically once ``sender`` leaves ``nbrs[receiver]``;
                # only the targeted buckets need explicit filtering.
                buckets = slow if slow is not None else extra
                bucket = buckets.get(receiver)
                if bucket:
                    kept = [e for e in bucket if e.sender != sender]
                    if len(kept) != len(bucket):
                        if kept:
                            buckets[receiver] = kept
                        else:
                            del buckets[receiver]

            def cut_edge(a: int, b: int) -> None:
                nonlocal events
                if b not in neighbor_sets[a]:
                    return
                events += 1
                for x, y in ((a, b), (b, a)):
                    neighbor_sets[x] = neighbor_sets[x] - {y}
                    neighbors[x] = tuple(v for v in neighbors[x] if v != y)
                    neighbor_ids[x].pop(y, None)
                    ctx = ctx_list[x]
                    if ctx is not None:
                        ctx.neighbors = neighbors[x]
                    added = added_map.get(x)
                    if not (added and added.pop(y, None) is not None):
                        removed_map.setdefault(x, {})[y] = node_ids[y]
                    purge_in_flight(x, y)

            def link_edge(a: int, b: int) -> None:
                nonlocal events
                if a in departed or b in departed or a == b:
                    return
                if b in neighbor_sets[a]:
                    return
                events += 1
                for x, y in ((a, b), (b, a)):
                    neighbor_sets[x] = neighbor_sets[x] | {y}
                    neighbors[x] = tuple(sorted(neighbor_sets[x]))
                    neighbor_ids[x][y] = node_ids[y]
                    ctx = ctx_list[x]
                    if ctx is not None:
                        ctx.neighbors = neighbors[x]
                    removed = removed_map.get(x)
                    if not (removed and removed.pop(y, None) is not None):
                        added_map.setdefault(x, {})[y] = node_ids[y]

            # Joins are resolved before the leaves apply: only a previously
            # departed node may (re)join.
            joining = [
                u
                for u in dict.fromkeys(check_index(u) for u in delta.join_nodes)
                if u in departed
            ]

            for u in delta.leave_nodes:
                check_index(u)
                if u in departed:
                    continue
                for v in tuple(neighbors[u]):
                    cut_edge(u, v)
                departed.add(u)
                events += 1
                added_map.pop(u, None)
                removed_map.pop(u, None)
                if proto_list[u] is not None:
                    try:
                        active.remove(u)
                    except ValueError:
                        pass  # already halted
                    pending_start.discard(u)
                    if track_adversary:
                        # Departed, not halted: the adversary no longer sees
                        # an entry for this node at all (a halted node keeps
                        # its {} entry).
                        adv_outboxes.pop(u, None)
                # Drop the node's own in-flight broadcast and its inbox.
                env[u] = None
                if slow is not None:
                    slow.pop(u, None)
                else:
                    extra.pop(u, None)

            for a, b in delta.remove_edges:
                cut_edge(check_index(a), check_index(b))

            for u in joining:
                departed.discard(u)
                events += 1

            for a, b in delta.add_edges:
                link_edge(check_index(a), check_index(b))

            for u in joining:
                if u in byzantine:
                    continue
                ctx = NodeContext(
                    index=u,
                    node_id=node_ids[u],
                    neighbors=neighbors[u],
                    neighbor_ids=neighbor_ids[u],
                    rng=random.Random(
                        split_seed(self.seed, "node", u, "join", round_number)
                    ),
                    round=round_number,
                )
                protocol = self.protocol_factory(ctx)
                ctx_list[u] = ctx
                proto_list[u] = protocol
                self._contexts[u] = ctx
                protocols_map[u] = protocol
                insort(active, u)
                decision_rounds.pop(u, None)
                pending_start.add(u)
                if track_adversary:
                    adv_outboxes[u] = {}
                # Joiners get on_start, not a topology-change notification.
                added_map.pop(u, None)
                removed_map.pop(u, None)

            for u in sorted(set(added_map) | set(removed_map)):
                protocol = proto_list[u]
                if (
                    protocol is None
                    or u in departed
                    or u in pending_start
                    or protocol.halted
                ):
                    continue
                protocol.on_topology_change(
                    ctx_list[u], added_map.get(u, {}), removed_map.get(u, {})
                )

            metrics.record_churn(round_number, events)

        # Round 0: on_start for every honest node.
        metrics.start_round()
        deliveries, fast, any_halted = run_phase(0, active, True)
        byz_outboxes = adversary_step(0)
        if fast:
            env = deliver_fast(deliveries)
            extra = {}
            slow = None
            if byz_outboxes:
                deliver_targeted(byz_outboxes, extra)
        else:
            slow = deliver_slow(deliveries, byz_outboxes)
        if any_halted:
            active = compact_active(active)

        # ``executed`` is the last fully executed round (round 0 ran above);
        # the stop condition is always evaluated with it, whether the run ends
        # by stopping early, by exhausting the round budget, or immediately
        # when ``limit == 0``.
        completed = False
        executed = 0
        for round_number in range(1, limit + 1):
            # The default stop waits for any still-scheduled churn: a join
            # can repopulate an empty active list (``churn_last`` is 0 for
            # static runs, leaving the condition unchanged).
            if (
                (not active and executed >= churn_last)
                if stop is None
                else stop(protocols_map, executed)
            ):
                completed = True
                break
            if churn is not None:
                delta = churn.delta_for_round(round_number)
                if delta is not None:
                    apply_delta(round_number, delta)
            metrics.start_round()
            deliveries, fast, any_halted = run_phase(round_number, active, False)
            byz_outboxes = adversary_step(round_number)
            if fast:
                env = deliver_fast(deliveries)
                extra = {}
                slow = None
                if byz_outboxes:
                    deliver_targeted(byz_outboxes, extra)
            else:
                slow = deliver_slow(deliveries, byz_outboxes)
            if any_halted:
                active = compact_active(active)
            executed = round_number
        else:
            completed = (
                (not active and executed >= churn_last)
                if stop is None
                else stop(protocols_map, executed)
            )

        return RunResult(
            network=self.network,
            rounds_executed=metrics.rounds_executed,
            protocols=protocols_map,
            metrics=metrics,
            completed=completed,
            departed=frozenset(departed),
        )
