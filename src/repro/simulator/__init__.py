"""Synchronous message-passing simulator (LOCAL / CONGEST models).

The engine implements the model of Section 2 of the paper:

* computation proceeds in synchronous rounds; every message sent in round
  ``r`` is delivered before the start of round ``r + 1``;
* Byzantine nodes are *full-information* and adaptive: the adversary observes
  every honest node's state and the honest messages of the current round
  before choosing its own messages;
* a message delivered over an edge always carries the true identity of the
  adjacent sender (Byzantine nodes cannot fake their edge-local ID), although
  its payload may be arbitrary;
* message sizes are tracked (bits plus number of embedded node IDs) so that
  the CONGEST "small message" claim of Theorem 2 can be verified.
"""

from repro.simulator.messages import Message, estimate_payload_bits
from repro.simulator.node import Broadcast, NodeContext, Protocol, Outbox, broadcast
from repro.simulator.network import Network
from repro.simulator.byzantine import Adversary, AdversaryView, ByzantineOutbox, SilentAdversary
from repro.simulator.engine import SynchronousEngine, RunResult
from repro.simulator.metrics import SimulationMetrics, NodeMessageStats
from repro.simulator.rng import split_seed, spawn_rngs

__all__ = [
    "Message",
    "estimate_payload_bits",
    "NodeContext",
    "Protocol",
    "Outbox",
    "broadcast",
    "Network",
    "Adversary",
    "AdversaryView",
    "ByzantineOutbox",
    "SilentAdversary",
    "SynchronousEngine",
    "RunResult",
    "SimulationMetrics",
    "NodeMessageStats",
    "split_seed",
    "spawn_rngs",
]
