"""Protocol and per-node context interfaces.

An honest node's algorithm is a :class:`Protocol` object.  The engine calls
``on_start`` once before round 1 and ``on_round`` once per round with the
inbox of messages delivered at the end of the previous round; the protocol
returns an outbox mapping neighbor indices to message lists.

Protocols only ever see *local* information, matching the paper's model:

* the node's own index-free identifier, degree, and the identifiers of its
  neighbors (port-numbered);
* messages received from neighbors (with engine-verified sender identity);
* a private random stream.

In particular no protocol has access to ``n``, the topology beyond its
immediate neighborhood, or any other node's state.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.simulator.messages import Message

__all__ = ["NodeContext", "Protocol", "Outbox", "Broadcast", "broadcast"]


class Broadcast(Mapping):
    """Outbox that sends one message to every listed neighbor.

    Behaves like the equivalent ``{target: [message] for target in targets}``
    mapping (so adversaries inspecting honest outboxes see the documented
    shape), but carries just the message and the target tuple.  The engine
    recognizes the type and delivers a broadcast with a single shared
    envelope instead of per-target dictionaries and lists -- both counting
    algorithms broadcast on every send, so this is the delivery hot path.

    Construct it with ``ctx.neighbors`` as the target tuple; the engine then
    skips per-target validation entirely (the tuple is its own).
    """

    __slots__ = ("message", "targets")

    def __init__(self, message: Message, targets: Tuple[int, ...]) -> None:
        self.message = message
        self.targets = targets

    def __getitem__(self, target: int) -> List[Message]:
        if target in self.targets:
            return [self.message]
        raise KeyError(target)

    def __iter__(self):
        return iter(self.targets)

    def __len__(self) -> int:
        return len(self.targets)

    def __bool__(self) -> bool:
        # Mapping truthiness would route through __len__; outbox emptiness is
        # checked several times per delivery, so answer it directly.
        return bool(self.targets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Broadcast({self.message!r}, targets={self.targets!r})"


#: An outbox maps the neighbor *index* (engine-level port) to the messages to
#: deliver to that neighbor at the end of the round.  ``Broadcast`` is the
#: compact equivalent for the send-to-all case.
Outbox = Union[Dict[int, List[Message]], Broadcast]


def broadcast(neighbors: Sequence[int], message: Message) -> Outbox:
    """Outbox that sends ``message`` to every neighbor.

    The same instance is shared across all targets: the engine never mutates
    outbox messages (delivery stamps sender identity on a separate envelope),
    so a broadcast needs no per-neighbor clones.
    """
    return Broadcast(message, tuple(neighbors))


@dataclass(slots=True)
class NodeContext:
    """Local view handed to a protocol on every callback.

    Attributes
    ----------
    index:
        Engine-level index of this node (not visible semantics-wise to the
        protocol; protocols should treat it as an opaque port label).
    node_id:
        The protocol-visible identifier of this node.
    neighbors:
        Engine-level indices of the adjacent nodes (the ports).
    neighbor_ids:
        Mapping from neighbor index to that neighbor's identifier (the node
        knows who is at the other end of each incident edge).
    rng:
        Private random stream of this node.
    round:
        Current round number (rounds are numbered from 1; ``on_start`` sees 0).
        Nodes have synchronized clocks in the paper's model, so exposing the
        global round counter is faithful.
    """

    index: int
    node_id: int
    neighbors: Tuple[int, ...]
    neighbor_ids: Dict[int, int]
    rng: random.Random
    round: int = 0

    @property
    def degree(self) -> int:
        """Degree of this node."""
        return len(self.neighbors)


class Protocol(ABC):
    """Interface implemented by every honest-node algorithm.

    Subclasses implement :meth:`on_start` and :meth:`on_round` and expose
    their decision state through :attr:`decided`, :attr:`estimate`, and
    :attr:`halted`.
    """

    @abstractmethod
    def on_start(self, ctx: NodeContext) -> Outbox:
        """Called once before round 1; returns the messages for round 1."""

    @abstractmethod
    def on_round(self, ctx: NodeContext, inbox: List[Message]) -> Outbox:
        """Called once per round with the messages delivered this round."""

    @property
    @abstractmethod
    def decided(self) -> bool:
        """Whether this node has (irrevocably) decided on an estimate."""

    @property
    @abstractmethod
    def estimate(self) -> Optional[float]:
        """The decided estimate of ``log n`` (None until decided)."""

    @property
    def halted(self) -> bool:
        """Whether this node has stopped participating (default: once decided).

        Halting must be *permanent*: once a protocol reports ``halted`` it is
        removed from the engine's active-node list and is never scheduled (or
        re-tested) again.  Protocols that may want to keep being scheduled
        after deciding (e.g. passive forwarders) must report ``False`` here,
        as Algorithm 2 does.
        """
        return self.decided

    @property
    def decision_round(self) -> Optional[int]:
        """Round at which the node decided, if it tracks it (default None)."""
        return getattr(self, "_decision_round", None)

    def on_topology_change(
        self,
        ctx: NodeContext,
        added_neighbors: Dict[int, int],
        removed_neighbors: Dict[int, int],
    ) -> None:
        """Notification that incident edges changed between rounds.

        Only invoked by engines running a churn schedule; static runs never
        call it.  ``added_neighbors`` / ``removed_neighbors`` map the affected
        neighbor *index* (port) to that neighbor's identifier.  When the hook
        runs, ``ctx.neighbors`` / ``ctx.neighbor_ids`` already reflect the new
        topology (removed neighbors are gone from them).  Default: ignore the
        change -- protocols written for static graphs keep working, they just
        never adapt.
        """
        return None
