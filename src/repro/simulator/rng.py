"""Deterministic randomness management for reproducible experiments.

Every run of the simulator derives one independent ``random.Random`` per node
(plus one for the adversary and one for the environment) from a single master
seed, so that experiments are exactly reproducible, yet per-node streams do
not interfere with each other regardless of the order in which nodes are
evaluated.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, List

__all__ = ["split_seed", "spawn_rngs", "coin_stream"]


def split_seed(master_seed: int, *labels: object) -> int:
    """Derive a child seed from ``master_seed`` and an arbitrary label path.

    Uses SHA-256 over the textual representation so the derivation is stable
    across Python versions and processes (unlike ``hash``).
    """
    digest = hashlib.sha256()
    digest.update(str(master_seed).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


def spawn_rngs(master_seed: int, keys: Iterable[object]) -> Dict[object, random.Random]:
    """One independent ``random.Random`` per key, all derived from ``master_seed``."""
    return {key: random.Random(split_seed(master_seed, key)) for key in keys}


def coin_stream(master_seed: int, *labels: object) -> random.Random:
    """An independent named ``random.Random`` derived from ``master_seed``.

    Used by protocols that need randomness tied to a stable label path (e.g.
    the per-node coin streams of the BenOr consensus family, labelled by node
    *identifier*) rather than to the engine's per-index node streams -- the
    draws are then reproducible across execution backends and process
    boundaries for a given master seed.
    """
    return random.Random(split_seed(master_seed, *labels))
