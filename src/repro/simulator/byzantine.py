"""Byzantine adversary interface (full-information model, Section 2).

The adversary controls every Byzantine node.  It is

* **full-information**: before choosing the Byzantine messages of round ``r``
  it observes the complete state of every honest node, all honest messages
  sent in round ``r`` (i.e. it sees the honest random choices of the round
  before acting), and the entire history of the execution;
* **adaptive**: its behaviour can depend on all of the above;
* **unable to forge edge-local identity**: the engine stamps every delivered
  message with the true adjacent sender, so the adversary can lie inside
  payloads (path fields, topology claims, estimates) but not about which edge
  a message arrived on.

This module lives in the simulator package (rather than
:mod:`repro.adversary`) because the engine depends on the *interface* while
the concrete attack strategies depend on the protocols; keeping the interface
here avoids a circular import.  :mod:`repro.adversary.base` re-exports these
names for the public API.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Tuple

from repro.graphs.graph import Graph
from repro.simulator.messages import Message
from repro.simulator.node import Protocol

__all__ = ["AdversaryView", "Adversary", "SilentAdversary", "ByzantineOutbox"]

#: Messages sent by Byzantine nodes: byzantine node -> neighbor -> messages.
ByzantineOutbox = Dict[int, Dict[int, List[Message]]]


@dataclass
class AdversaryView:
    """Everything the full-information adversary may inspect in one round.

    Attributes
    ----------
    round:
        The current round number (1-based; round 0 is the start round).
    graph:
        The complete network topology (the adversary knows it; honest nodes
        do not).
    byzantine:
        The set of nodes the adversary controls.
    honest_protocols:
        Read access to the live protocol object of every honest node --
        i.e. the honest nodes' full internal state including the random
        choices already made this round.
    honest_outboxes:
        The messages honest nodes are sending this round, keyed by sender and
        then by destination.  The adversary sees them *before* its own
        messages are fixed (omniscience), but cannot alter or suppress them.
    byzantine_inboxes:
        Messages delivered to Byzantine nodes at the end of the previous
        round.
    rng:
        The adversary's private randomness (only relevant for randomized
        attack strategies; the model allows arbitrary computation).
    """

    round: int
    graph: Graph
    byzantine: FrozenSet[int]
    honest_protocols: Mapping[int, Protocol]
    honest_outboxes: Mapping[int, Mapping[int, List[Message]]]
    byzantine_inboxes: Mapping[int, List[Message]]
    rng: random.Random

    def byzantine_neighbors(self, byz_node: int) -> Tuple[int, ...]:
        """Neighbors of a Byzantine node (its attack surface)."""
        return self.graph.neighbors(byz_node)

    def honest_neighbors_of(self, byz_node: int) -> Tuple[int, ...]:
        """The honest neighbors of a Byzantine node."""
        return tuple(
            v for v in self.graph.neighbors(byz_node) if v not in self.byzantine
        )


class Adversary(ABC):
    """Base class of all Byzantine behaviours.

    Subclasses implement :meth:`act`, returning the messages every Byzantine
    node sends this round.  :meth:`setup` is called once before the run with
    the full topology and the set of corrupted nodes.
    """

    def setup(self, graph: Graph, byzantine: FrozenSet[int], rng: random.Random) -> None:
        """Called once before round 0.  Default: remember the arguments."""
        self.graph = graph
        self.byzantine = byzantine
        self.rng = rng

    @abstractmethod
    def act(self, view: AdversaryView) -> ByzantineOutbox:
        """Return the messages sent by Byzantine nodes this round."""

    # Convenience helpers -------------------------------------------------- #
    @staticmethod
    def broadcast_from(
        view: AdversaryView, byz_node: int, message: Message
    ) -> Dict[int, List[Message]]:
        """Outbox fragment sending ``message`` to every neighbor of ``byz_node``.

        The instance is shared across targets; the engine stamps sender
        identity on delivery envelopes, so no per-neighbor clones are needed.
        """
        return {v: [message] for v in view.byzantine_neighbors(byz_node)}


class SilentAdversary(Adversary):
    """Byzantine nodes that never send anything (pure crash/omission behaviour).

    Silence is itself an attack against Algorithm 1 (a mute neighbor forces a
    decision, Line 5 of Algorithm 1) and serves as the weakest baseline
    behaviour in the adversary-grid experiment E9.
    """

    def act(self, view: AdversaryView) -> ByzantineOutbox:
        return {}
