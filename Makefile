# One-word entry points for the verify / benchmark / demo workflows.
#
#   make test          - tier-1 test suite (the verify command of ROADMAP.md)
#   make bench         - pinned perf scenarios -> BENCH_<date>.json
#   make bench-compare - same, plus a diff against the previous BENCH file
#                        (exits nonzero on a >10% wall-clock regression)
#   make bench-smoke   - reduced bench suite, no file written (~sub-minute)
#   make sweep-demo    - cached parallel sweep of E3 (re-run it to see the
#                        artifact cache short-circuit the work)
#   make scenario-demo - run the committed declarative scenario spec
#                        (examples/scenario_e2_small.json) end to end
#                        (sub-minute; a prerequisite of `make test`)

PYTHON ?= python
WORKERS ?= 4
ARTIFACT_DIR ?= .sweep-artifacts
BENCH_DIR ?= .
BENCH_REPEATS ?= 3

.PHONY: test bench bench-compare bench-smoke sweep-demo scenario-demo clean-artifacts

test: scenario-demo
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

scenario-demo:
	PYTHONPATH=src $(PYTHON) -m repro.cli scenario run examples/scenario_e2_small.json

bench:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --repeats $(BENCH_REPEATS) --output-dir $(BENCH_DIR)

bench-compare:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --repeats $(BENCH_REPEATS) --output-dir $(BENCH_DIR) --compare

bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --scenarios smoke --repeats 1 --no-write

sweep-demo:
	PYTHONPATH=src $(PYTHON) -m repro.cli sweep e3 --workers $(WORKERS) --artifact-dir $(ARTIFACT_DIR)

clean-artifacts:
	rm -rf $(ARTIFACT_DIR)
