# One-word entry points for the verify / benchmark / demo workflows.
#
#   make test          - tier-1 test suite (the verify command of ROADMAP.md);
#                        runs scenario-demo and the smoke-sized bench-compare
#                        gate first, so >10% wall-clock regressions on the
#                        smoke suite fail locally before a PR lands
#   make bench         - pinned perf scenarios -> BENCH_<date>.json
#   make bench-compare - same, plus a diff against the previous BENCH file
#                        (exits nonzero on a >10% wall-clock regression)
#   make bench-smoke   - reduced bench suite, no file written (~sub-minute)
#   make bench-smoke-compare - smoke suite diffed against the committed
#                        benchmarks/BENCH_SMOKE.json baseline
#   make profile       - smoke bench under cProfile; writes the top-25
#                        cumulative report to profile_report.txt
#   make sweep-demo    - cached parallel sweep of E3 (re-run it to see the
#                        artifact cache short-circuit the work)
#   make scenario-demo - run the committed declarative scenario spec
#                        (examples/scenario_e2_small.json) end to end
#                        (sub-minute; a prerequisite of `make test`)
#   make dist-demo     - run a scenario sweep over the distributed backend
#                        (loopback broker + 2 spawned worker daemons) and
#                        assert the table is byte-identical to the serial
#                        run (seconds; a prerequisite of `make test`)
#   make churn-demo    - dynamic-topology gate: assert an explicit churn=none
#                        suite regenerates the E2 golden table byte-for-byte,
#                        then run the committed churn example and assert its
#                        re-convergence metrics are non-trivial (sub-minute;
#                        a prerequisite of `make test`)
#   make chaos-demo    - chaos-hardening gate: run a seeded E3 mini-sweep on
#                        the distributed backend under a randomized fault
#                        schedule, SIGKILL the broker mid-sweep, resume with
#                        --resume, and assert the final table is byte-identical
#                        to the serial run (a couple of minutes worst case;
#                        wrapped in a hard `timeout`; a prerequisite of
#                        `make test`)
#   make hub-demo      - sweep-hub gate: start a standing hub + 2 persistent
#                        workers, submit two overlapping sweeps concurrently
#                        against one shared artifact root, SIGKILL one client
#                        mid-sweep and recover it with --resume, and assert
#                        both tables are byte-identical to the serial run
#                        (sub-minute typical; wrapped in a hard `timeout`;
#                        a prerequisite of `make test`)
#   make zoo-demo      - protocol-zoo gate: run the committed cross-protocol
#                        suite (examples/scenario_zoo_compare.json) and assert
#                        it regenerates tests/golden/zoo_compare_table.txt
#                        byte-for-byte, then regenerate the E2 paper golden to
#                        prove the protocol-registry refactor is inert
#                        (sub-minute; a prerequisite of `make test`)
#   make hub-chaos-demo - hub high-availability gate: hub serve --state + 2
#                        workers + 2 concurrent clients, SIGKILL the *hub*
#                        mid-sweep, restart it on the same port, and assert
#                        the clients self-heal (reconnect + re-adoption, no
#                        --resume) with tables byte-identical to serial and
#                        no artifact-backed task executed twice (sub-minute
#                        typical; wrapped in a hard `timeout`; a
#                        prerequisite of `make test`)

PYTHON ?= python
WORKERS ?= 4
ARTIFACT_DIR ?= .sweep-artifacts
BENCH_DIR ?= .
BENCH_REPEATS ?= 3
SMOKE_BASELINE ?= benchmarks/BENCH_SMOKE.json
# Wall-clock tolerance of the smoke gate.  The committed baseline is a
# conservative envelope from the benching machine; on substantially slower
# hardware run e.g. `make test SMOKE_THRESHOLD=0.5` (the machine-independent
# rounds/messages drift check still applies) or regenerate the baseline.
SMOKE_THRESHOLD ?= 0.10
PROFILE_OUT ?= profile_report.txt

DIST_DEMO_SPEC ?= examples/scenario_benign_congest.json
# Hard wall-clock ceiling for the chaos gate: the demo injects hangs and
# kills a broker, so a wedged resume must become a loud timeout, not a
# stuck CI job.
CHAOS_TIMEOUT ?= 240
# Same idea for the hub gate: a hub that never drains a submission or a
# worker that ignores SIGTERM must fail fast, not hang CI.
HUB_TIMEOUT ?= 240
# And for the hub HA gate: a client that never self-heals after the hub
# SIGKILL must become a loud timeout.
HUB_CHAOS_TIMEOUT ?= 240

.PHONY: test bench bench-compare bench-smoke bench-smoke-compare profile sweep-demo scenario-demo dist-demo churn-demo chaos-demo hub-demo hub-chaos-demo zoo-demo clean-artifacts

test: scenario-demo dist-demo churn-demo chaos-demo hub-demo hub-chaos-demo zoo-demo bench-smoke-compare
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

scenario-demo:
	PYTHONPATH=src $(PYTHON) -m repro.cli scenario run examples/scenario_e2_small.json

dist-demo:
	PYTHONPATH=src $(PYTHON) -m repro.cli scenario run $(DIST_DEMO_SPEC) > .dist-demo-serial.txt
	PYTHONPATH=src $(PYTHON) -m repro.cli scenario run $(DIST_DEMO_SPEC) --backend distributed --spawn-workers 2 > .dist-demo-distributed.txt
	@diff .dist-demo-serial.txt .dist-demo-distributed.txt; status=$$?; \
	rm -f .dist-demo-serial.txt .dist-demo-distributed.txt; \
	if [ $$status -ne 0 ]; then echo "dist-demo FAIL: distributed table differs from serial"; exit $$status; fi; \
	echo "dist-demo ok: distributed (loopback broker + 2 workers) table identical to serial"

churn-demo:
	PYTHONPATH=src $(PYTHON) -m repro.tools.churn_demo

zoo-demo:
	PYTHONPATH=src $(PYTHON) -m repro.tools.zoo_demo

chaos-demo:
	PYTHONPATH=src timeout -k 10 $(CHAOS_TIMEOUT) $(PYTHON) -m repro.tools.chaos_demo

hub-demo:
	PYTHONPATH=src timeout -k 10 $(HUB_TIMEOUT) $(PYTHON) -m repro.tools.hub_demo

hub-chaos-demo:
	PYTHONPATH=src timeout -k 10 $(HUB_CHAOS_TIMEOUT) $(PYTHON) -m repro.tools.hub_chaos_demo

bench:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --repeats $(BENCH_REPEATS) --output-dir $(BENCH_DIR)

bench-compare:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --repeats $(BENCH_REPEATS) --output-dir $(BENCH_DIR) --compare

bench-smoke:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --scenarios smoke --repeats 1 --no-write

bench-smoke-compare:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --scenarios smoke --repeats 2 --no-write --compare-to $(SMOKE_BASELINE) --threshold $(SMOKE_THRESHOLD)

profile:
	PYTHONPATH=src $(PYTHON) -m repro.cli bench --scenarios smoke --repeats 1 --no-write --profile $(PROFILE_OUT)

sweep-demo:
	PYTHONPATH=src $(PYTHON) -m repro.cli sweep e3 --workers $(WORKERS) --artifact-dir $(ARTIFACT_DIR)

clean-artifacts:
	rm -rf $(ARTIFACT_DIR)
