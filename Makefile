# One-word entry points for the verify / benchmark / demo workflows.
#
#   make test        - tier-1 test suite (the verify command of ROADMAP.md)
#   make bench-smoke - E3 + E12 at reduced sizes through the parallel runner
#   make sweep-demo  - cached parallel sweep of E3 (re-run it to see the
#                      artifact cache short-circuit the work)

PYTHON ?= python
WORKERS ?= 4
ARTIFACT_DIR ?= .sweep-artifacts

.PHONY: test bench-smoke sweep-demo clean-artifacts

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

bench-smoke:
	PYTHONPATH=src $(PYTHON) -c "\
	from repro.experiments import e3_benign, e12_scaling; \
	from repro.runner import SweepRunner; \
	import time; \
	runner = SweepRunner(workers=$(WORKERS)); \
	t0 = time.perf_counter(); \
	print(e3_benign.run_experiment(sizes=(64, 128), trials=1, runner=runner).render()); \
	print(); \
	print(e12_scaling.run_experiment(local_sizes=(64, 128), congest_sizes=(64,), congest_byzantine_counts=(1, 2), runner=runner).render()); \
	print(); \
	print(f'bench-smoke wall-clock: {time.perf_counter() - t0:.2f}s ($(WORKERS) workers)')"

sweep-demo:
	PYTHONPATH=src $(PYTHON) -m repro.cli sweep e3 --workers $(WORKERS) --artifact-dir $(ARTIFACT_DIR)

clean-artifacts:
	rm -rf $(ARTIFACT_DIR)
