"""Benchmark E1 -- Theorem 1: deterministic LOCAL counting under Byzantine nodes."""

from repro.experiments import e1_local_theorem1


def test_e1_local_theorem1(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "e1",
        e1_local_theorem1.run_experiment,
        sizes=(64, 128, 256, 512),
        gamma=0.7,
        behaviour="fake-topology",
        placement="random",
        trials=1,
        seed=0,
    )
    for row in result.rows:
        assert row["decided_fraction"] == 1.0
        assert row["fraction_in_band"] >= 0.9
