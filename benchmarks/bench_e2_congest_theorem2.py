"""Benchmark E2 -- Theorem 2: randomized small-message counting under attack."""

from repro.experiments import e2_congest_theorem2


def test_e2_congest_theorem2(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "e2",
        e2_congest_theorem2.run_experiment,
        sizes=(128, 256),
        behaviour="beacon-flood",
        placement="spread",
        trials=1,
        seed=0,
    )
    for row in result.rows:
        assert row["goodtl_fraction_in_band"] >= 0.85
        assert row["small_message_fraction"] >= 0.9
        assert row["max_decision_round"] <= row["round_budget"]
