"""Shared benchmark fixtures.

Every benchmark runs one experiment driver exactly once (``pedantic`` with a
single round -- the drivers are long-running simulations, not micro-benchmarks),
prints the regenerated table, and writes it to ``benchmarks/results/<id>.txt``
so the numbers recorded in EXPERIMENTS.md can be regenerated verbatim.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def run_experiment_benchmark(benchmark, results_dir):
    """Run an experiment driver once under pytest-benchmark and persist its table."""

    def _run(experiment_id: str, driver, **kwargs):
        result = benchmark.pedantic(
            lambda: driver(**kwargs), rounds=1, iterations=1, warmup_rounds=0
        )
        rendered = result.render()
        print()
        print(rendered)
        (results_dir / f"{experiment_id}.txt").write_text(rendered + "\n")
        assert result.rows, f"experiment {experiment_id} produced no rows"
        return result

    return _run
