"""Benchmark E11 -- Remark 2: per-node estimate distribution."""

from repro.experiments import e11_estimate_distribution


def test_e11_estimate_distribution(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "e11",
        e11_estimate_distribution.run_experiment,
        sizes=(128, 256, 512),
        trials=2,
        seed=0,
    )
    for row in result.rows:
        assert row["max_value"] <= row["ceil_ln_n"] + 1
        assert row["spread_factor"] is None or row["spread_factor"] <= 3.0
