"""Benchmark E3 -- Corollary 1: benign-case agreement and termination."""

from repro.experiments import e3_benign


def test_e3_benign(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "e3",
        e3_benign.run_experiment,
        sizes=(64, 128, 256, 512),
        trials=2,
        seed=0,
    )
    for row in result.rows:
        assert row["decided_fraction"] == 1.0
        assert row["quiescent_rate"] == 1.0
        assert row["max_estimate"] <= row["ceil_ln_n"] + 1
