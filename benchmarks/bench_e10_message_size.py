"""Benchmark E10 -- message-size comparison between Algorithm 1 and Algorithm 2."""

from repro.experiments import e10_message_size


def test_e10_message_size(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "e10",
        e10_message_size.run_experiment,
        sizes=(64, 128, 256, 512),
        seed=0,
    )
    for row in result.rows:
        assert row["congest_small_message_fraction"] >= 0.99
        assert row["local_max_message_ids"] > 10 * row["congest_max_message_ids"]
    # Algorithm 1's biggest message grows with n; Algorithm 2's stays flat-ish.
    local_growth = result.rows[-1]["local_max_message_ids"] / result.rows[0]["local_max_message_ids"]
    congest_growth = (
        result.rows[-1]["congest_max_message_ids"]
        / max(1, result.rows[0]["congest_max_message_ids"])
    )
    assert local_growth > 2.0
    assert congest_growth <= 3.0
