"""Benchmark E4 -- Theorem 3: indistinguishability without expansion."""

from repro.experiments import e4_impossibility


def test_e4_impossibility(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "e4",
        e4_impossibility.run_experiment,
        base_n=64,
        copy_counts=(4, 8),
        num_trials=2,
        seed=0,
    )
    glued_rows = [r for r in result.rows if r.get("demonstrates_impossibility") is not None]
    assert any(r["demonstrates_impossibility"] for r in glued_rows)
    assert all(r["copies_isomorphic"] for r in glued_rows)
