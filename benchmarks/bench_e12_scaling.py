"""Benchmark E12 -- round-complexity scaling fits (Theorems 1 and 2 shapes)."""

from repro.experiments import e12_scaling


def test_e12_scaling(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "e12",
        e12_scaling.run_experiment,
        local_sizes=(64, 128, 256, 512),
        congest_sizes=(64, 128),
        congest_byzantine_counts=(1, 2, 3),
        seed=0,
    )
    local_rounds = [r["measured_rounds"] for r in result.rows if r["algorithm"] == "algorithm1"]
    # Rounds grow (weakly) with n and stay tiny compared to n itself.
    assert local_rounds == sorted(local_rounds)
    assert local_rounds[-1] <= 20
    congest_rounds = [r["measured_rounds"] for r in result.rows if r["algorithm"] == "algorithm2"]
    assert all(rounds >= 1 for rounds in congest_rounds)
