"""Benchmark E9 -- adversary robustness grid (placement x behaviour)."""

from repro.experiments import e9_adversary_grid


def test_e9_adversary_grid(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "e9",
        e9_adversary_grid.run_experiment,
        n=128,
        placements=("random", "clustered", "spread"),
        congest_byzantine=3,
        seed=0,
    )
    for row in result.rows:
        assert row["fraction_in_band"] >= 0.8, row
