"""Benchmark E5 -- Lemma 2: locally tree-like fraction of H(n, d)."""

from repro.experiments import e5_treelike


def test_e5_treelike(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "e5",
        e5_treelike.run_experiment,
        sizes=(256, 512, 1024, 2048),
        degrees=(8, 12),
        trials=3,
        seed=0,
    )
    # For the paper's own degree regime (d = 8) the explicit-constant bound
    # holds outright; for every degree the non-tree-like fraction must shrink
    # with n (the o(n) shape of Lemma 2).
    for row in result.rows:
        if row["d"] == 8:
            assert row["within_lemma_bound"]
    for d in {row["d"] for row in result.rows}:
        fractions = [1.0 - row["mean_fraction"] for row in result.rows if row["d"] == d]
        assert fractions[-1] < fractions[0]
