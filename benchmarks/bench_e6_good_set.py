"""Benchmark E6 -- Lemma 1: size and expansion of the Good set."""

from repro.experiments import e6_good_set


def test_e6_good_set(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "e6",
        e6_good_set.run_experiment,
        sizes=(256, 512, 1024),
        placements=("random", "clustered", "spread"),
        trials=2,
        seed=0,
    )
    for row in result.rows:
        assert row["mean_good_fraction"] >= 0.6
        assert row["mean_induced_expansion_upper_bound"] is None or (
            row["mean_induced_expansion_upper_bound"] > 0.1
        )
