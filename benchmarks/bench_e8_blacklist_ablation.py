"""Benchmark E8 -- ablation: blacklisting on vs off under beacon flooding."""

from repro.experiments import e8_blacklist_ablation


def test_e8_blacklist_ablation(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "e8",
        e8_blacklist_ablation.run_experiment,
        sizes=(128, 256),
        num_byzantine=3,
        trials=1,
        seed=0,
        extra_phases=1,
    )
    by_key = {(r["blacklist"], r["n"]): r for r in result.rows}
    for n in (128, 256):
        with_bl = by_key[(True, n)]
        without_bl = by_key[(False, n)]
        assert with_bl["far_node_decided_fraction"] > without_bl["far_node_decided_fraction"]
        assert with_bl["max_estimate"] <= with_bl["ceil_ln_n"] + 3
