"""Benchmark E7 -- Section 1.2: baselines break under a single Byzantine node."""

from repro.experiments import e7_baselines


def test_e7_baselines(run_experiment_benchmark):
    result = run_experiment_benchmark(
        "e7",
        e7_baselines.run_experiment,
        n=256,
        byzantine_counts=(0, 1, 4),
        seed=0,
        include_algorithm2=True,
    )
    rows = {(r["protocol"], r["byzantine"]): r for r in result.rows}
    # Every baseline is accurate with 0 Byzantine nodes (within a factor 2 of
    # ln n) and loses that guarantee with a single Byzantine node.
    for protocol in ("geometric-max", "spanning-tree", "flooding-diameter"):
        assert rows[(protocol, 0)]["fraction_within_2x"] >= 0.9
        assert rows[(protocol, 1)]["fraction_within_2x"] <= 0.1
    assert rows[("support-estimation", 1)]["decided_fraction"] < 0.5
    # The paper's algorithm keeps a bounded error with Byzantine nodes present.
    assert rows[("algorithm2 (this paper)", 4)]["median_relative_error"] < 1.0
    assert rows[("algorithm2 (this paper)", 4)]["fraction_within_2x"] >= 0.75
