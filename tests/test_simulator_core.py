"""Tests for messages, size accounting, RNG splitting, node context, network, metrics."""

import math
import random

import pytest

from repro.graphs.generators import cycle_graph
from repro.simulator.messages import Message, estimate_payload_bits
from repro.simulator.metrics import NodeMessageStats, SimulationMetrics
from repro.simulator.network import Network
from repro.simulator.node import NodeContext, broadcast
from repro.simulator.rng import spawn_rngs, split_seed


class TestPayloadBits:
    def test_none_and_bool(self):
        assert estimate_payload_bits(None) == 1
        assert estimate_payload_bits(True) == 1

    def test_int_bit_length(self):
        assert estimate_payload_bits(0) == 1
        assert estimate_payload_bits(255) == 8
        assert estimate_payload_bits(256) == 9

    def test_float(self):
        assert estimate_payload_bits(3.14) == 64

    def test_string(self):
        assert estimate_payload_bits("abcd") == 32

    def test_containers_sum(self):
        assert estimate_payload_bits([1, 1]) == 2 * (1 + 2)
        assert estimate_payload_bits({"a": 1}) == 8 + 1 + 2

    def test_fallback_object(self):
        class Thing:
            def __repr__(self):
                return "xy"

        assert estimate_payload_bits(Thing()) == 16


class TestMessage:
    def test_make_computes_size(self):
        m = Message.make("kind", 255, num_ids=2)
        assert m.size_bits == 8
        assert m.num_ids == 2

    def test_clone_is_independent_object(self):
        m = Message.make("kind", [1, 2])
        c = m.clone()
        assert c is not m
        assert c.kind == m.kind and c.size_bits == m.size_bits

    def test_total_footprint(self):
        m = Message(kind="k", size_bits=10, num_ids=3)
        assert m.total_footprint(id_bits=64) == 10 + 192

    def test_is_small_true(self):
        m = Message(kind="k", size_bits=32, num_ids=2)
        assert m.is_small(1024)

    def test_is_small_false_many_ids(self):
        m = Message(kind="k", size_bits=8, num_ids=100)
        assert not m.is_small(1024)

    def test_is_small_false_many_bits(self):
        m = Message(kind="k", size_bits=10_000, num_ids=0)
        assert not m.is_small(64)


class TestRng:
    def test_split_seed_deterministic(self):
        assert split_seed(1, "a", 2) == split_seed(1, "a", 2)

    def test_split_seed_label_sensitivity(self):
        assert split_seed(1, "a") != split_seed(1, "b")
        assert split_seed(1, "a") != split_seed(2, "a")

    def test_spawn_rngs_independent_streams(self):
        rngs = spawn_rngs(7, ["x", "y"])
        assert rngs["x"].random() != rngs["y"].random()

    def test_spawn_rngs_reproducible(self):
        a = spawn_rngs(7, ["x"])["x"].random()
        b = spawn_rngs(7, ["x"])["x"].random()
        assert a == b


class TestNodeContextAndBroadcast:
    def test_degree(self):
        ctx = NodeContext(
            index=0, node_id=42, neighbors=(1, 2, 3), neighbor_ids={1: 10, 2: 20, 3: 30},
            rng=random.Random(0),
        )
        assert ctx.degree == 3

    def test_broadcast_shares_one_instance(self):
        # The engine stamps sender identity on delivery envelopes, so a
        # broadcast shares a single message object across all targets.
        m = Message.make("k", 1)
        out = broadcast((1, 2), m)
        assert set(out) == {1, 2}
        assert out[1][0] is m and out[2][0] is m


class TestNetwork:
    def test_honest_and_byzantine_partition(self, small_hnd):
        net = Network(graph=small_hnd, byzantine=frozenset({0, 5}))
        assert net.num_byzantine == 2
        assert 0 not in net.honest and 5 not in net.honest
        assert len(net.honest) == small_hnd.n - 2

    def test_is_byzantine(self, small_hnd):
        net = Network(graph=small_hnd, byzantine=frozenset({3}))
        assert net.is_byzantine(3)
        assert not net.is_byzantine(4)

    def test_invalid_byzantine_index_rejected(self, small_hnd):
        with pytest.raises(ValueError):
            Network(graph=small_hnd, byzantine=frozenset({10_000}))

    def test_fully_honest(self, small_hnd):
        net = Network.fully_honest(small_hnd)
        assert net.num_byzantine == 0
        assert net.honest_fraction() == 1.0

    def test_honest_fraction(self, small_hnd):
        net = Network(graph=small_hnd, byzantine=frozenset({0}))
        assert net.honest_fraction() == pytest.approx((small_hnd.n - 1) / small_hnd.n)


class TestMetrics:
    def test_record_send_updates_totals(self):
        metrics = SimulationMetrics()
        metrics.start_round()
        metrics.record_send(0, Message(kind="k", size_bits=10, num_ids=1))
        metrics.record_send(0, Message(kind="k", size_bits=20, num_ids=0))
        assert metrics.total_messages == 2
        assert metrics.total_bits == 30
        assert metrics.messages_per_round == [2]
        assert metrics.per_node[0].max_message_bits == 20

    def test_small_message_fraction(self):
        metrics = SimulationMetrics()
        metrics.start_round()
        metrics.record_send(0, Message(kind="k", size_bits=8, num_ids=1))
        metrics.record_send(1, Message(kind="k", size_bits=10_000, num_ids=50))
        assert metrics.small_message_fraction(1024, [0, 1]) == pytest.approx(0.5)

    def test_small_message_fraction_counts_silent_nodes(self):
        metrics = SimulationMetrics()
        assert metrics.small_message_fraction(64, [0, 1, 2]) == 1.0

    def test_decision_round_recorded_once(self):
        metrics = SimulationMetrics()
        metrics.record_decision(3, 5)
        metrics.record_decision(3, 9)
        assert metrics.decision_rounds[3] == 5

    def test_node_stats_sent_only_small_messages(self):
        stats = NodeMessageStats()
        stats.record(Message(kind="k", size_bits=16, num_ids=2))
        assert stats.sent_only_small_messages(256)
        stats.record(Message(kind="k", size_bits=0, num_ids=99))
        assert not stats.sent_only_small_messages(256)

    def test_max_message_bits_over(self):
        metrics = SimulationMetrics()
        metrics.start_round()
        metrics.record_send(0, Message(kind="k", size_bits=7, num_ids=0))
        metrics.record_send(2, Message(kind="k", size_bits=70, num_ids=0))
        assert metrics.max_message_bits_over([0, 2]) == 70
        assert metrics.max_message_bits_over([0]) == 7

    def test_record_send_before_start_round_raises(self):
        # Regression: a send recorded before any round was opened used to be
        # silently dropped from messages_per_round (under-reporting).
        metrics = SimulationMetrics()
        with pytest.raises(RuntimeError, match="start_round"):
            metrics.record_send(0, Message(kind="k", size_bits=1, num_ids=0))
        with pytest.raises(RuntimeError):
            metrics.record_broadcast(0, Message(kind="k", size_bits=1, num_ids=0), 3)
        assert metrics.total_messages == 0
        assert metrics.messages_per_round == []

    def test_record_broadcast_equals_repeated_record_send(self):
        message = Message(kind="k", size_bits=10, num_ids=2)
        broadcasted = SimulationMetrics()
        broadcasted.start_round()
        broadcasted.record_broadcast(0, message, 3)
        repeated = SimulationMetrics()
        repeated.start_round()
        for _ in range(3):
            repeated.record_send(0, message)
        assert broadcasted.total_messages == repeated.total_messages == 3
        assert broadcasted.total_bits == repeated.total_bits == 30
        assert broadcasted.messages_per_round == repeated.messages_per_round == [3]
        assert broadcasted.per_node[0].ids_sent == repeated.per_node[0].ids_sent == 6
        assert broadcasted.per_node[0].max_message_bits == 10
