"""Property tests: incremental ``LocalView`` state == from-scratch recomputation.

The incremental structures (BFS layers, layer prefixes, the interior set, and
the interior's out-boundary) are maintained inside ``integrate``.  These tests
drive randomized ``integrate`` sequences -- including Byzantine-malformed
payloads -- and assert after every step that

* the bitset/columnar ``LocalView`` equals the quantities recomputed from
  scratch off the adjacency (the pre-refactor definitions), and
* the bitset ``LocalView`` agrees observable-for-observable (including
  ``integrate``'s return values) with the retained set-based reference
  implementation :class:`repro.core.local_view_reference.SetBasedLocalView`.
"""

import random

import pytest

from repro.core.local_counting import ClaimInterner, LocalView
from repro.core.local_view_reference import SetBasedLocalView


# --------------------------------------------------------------------------- #
# From-scratch reference implementations (the pre-refactor per-round logic)
# --------------------------------------------------------------------------- #
def scratch_layer_prefixes(view):
    adj = view.adjacency()
    dist = {view.own_id: 0}
    frontier = [view.own_id]
    layers = [{view.own_id}]
    while frontier:
        nxt = []
        for u in frontier:
            for v in adj.get(u, ()):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    nxt.append(v)
        if not nxt:
            break
        layers.append(set(nxt))
        frontier = nxt
    prefixes = []
    running = set()
    for layer in layers:
        running |= layer
        prefixes.append(set(running))
    return prefixes


def scratch_interior(view):
    settled = set(view.edge_sets)
    return {
        v for v, edges in view.edge_sets.items() if all(w in settled for w in edges)
    }


def out_boundary(adj, subset):
    out = set()
    for u in subset:
        for v in adj.get(u, ()):
            if v not in subset:
                out.add(v)
    return out


def assert_matches_scratch(view):
    adj = view.adjacency()
    prefixes = scratch_layer_prefixes(view)
    incremental = [set(p) for p in view.layer_prefixes()]
    assert incremental == prefixes

    interior = scratch_interior(view)
    assert view.interior_set() == interior

    # The (size, out-size) candidate pairs must equal the pre-refactor
    # expansion quantities: Out(prefix_j) via the adjacency, then the
    # interior with its out-boundary.
    expected = [(len(p), len(out_boundary(adj, p))) for p in prefixes]
    if interior:
        expected.append((len(interior), len(out_boundary(adj, interior))))
    assert view.expansion_check_candidates() == expected

    # Layer sizes are the prefix-size deltas.
    sizes = view.layer_sizes()
    assert sizes[0] == 1
    assert [sum(sizes[: j + 1]) for j in range(len(sizes))] == [
        len(p) for p in prefixes
    ]


# --------------------------------------------------------------------------- #
# Randomized integrate sequences
# --------------------------------------------------------------------------- #
MAX_DEGREE = 5


def random_edge_entry(rng, view, fresh_base):
    """A (node_id, edge_ids) claim: sometimes honest, sometimes malformed."""
    known = sorted(view.vertices)
    roll = rng.random()
    if roll < 0.55:
        # Well-formed claim about a known-but-unsettled or fresh vertex.
        if rng.random() < 0.7 and known:
            node_id = rng.choice(known)
        else:
            node_id = fresh_base + rng.randrange(1000)
        pool = known + [fresh_base + rng.randrange(1000) for _ in range(4)]
        edges = tuple(
            sorted({v for v in rng.sample(pool, k=min(len(pool), rng.randrange(1, MAX_DEGREE + 1))) if v != node_id})
        )
        return (node_id, edges)
    if roll < 0.65 and view.edge_sets:
        # Exact duplicate of an already-settled claim.
        node_id = rng.choice(sorted(view.edge_sets))
        return (node_id, tuple(sorted(view.edge_sets[node_id])))
    if roll < 0.75 and view.edge_sets:
        # Conflicting claim about a settled vertex.
        node_id = rng.choice(sorted(view.edge_sets))
        return (node_id, tuple(sorted(set(rng.sample(range(5000, 6000), k=2)))))
    # Malformed claims.
    bad = rng.randrange(4)
    if bad == 0:
        return ("evil", (1, 2))
    if bad == 1:
        node_id = fresh_base + rng.randrange(1000)
        return (node_id, ("x", node_id + 1))
    if bad == 2:
        node_id = fresh_base + rng.randrange(1000)
        return (node_id, tuple(range(7000, 7000 + MAX_DEGREE + 3)))  # degree bound
    node_id = fresh_base + rng.randrange(1000)
    return (node_id, (node_id, node_id + 1))  # self-loop


def random_vertices(rng, fresh_base):
    out = []
    for _ in range(rng.randrange(3)):
        if rng.random() < 0.8:
            out.append(fresh_base + rng.randrange(1000))
        else:
            out.append("ghost")
    return out


class TestIncrementalMatchesScratch:
    def test_initial_state(self):
        view = LocalView(100, [101, 102, 103])
        assert_matches_scratch(view)
        view = LocalView(7, [])  # isolated owner: immediately interior
        assert_matches_scratch(view)
        assert view.interior_set() == {7}

    def test_randomized_integrate_sequences(self):
        for seed in range(25):
            rng = random.Random(seed)
            degree = rng.randrange(2, MAX_DEGREE + 1)
            neighbors = [101 + i for i in range(degree)]
            view = LocalView(100, neighbors)
            for step in range(20):
                entries = [
                    random_edge_entry(rng, view, fresh_base=2000 + 100 * step)
                    for _ in range(rng.randrange(1, 4))
                ]
                vertices = random_vertices(rng, fresh_base=2000 + 100 * step)
                view.integrate(entries, vertices, max_degree=MAX_DEGREE)
                assert_matches_scratch(view)

    def test_malformed_only_sequences_do_not_corrupt(self):
        rng = random.Random(99)
        view = LocalView(100, [101, 102])
        for _ in range(10):
            bad, new_edges, new_vertices = view.integrate(
                [("evil", (1, 2)), (3, ("a",)), (4, (4, 5))],
                ["ghost", None],
                max_degree=4,
            )
            assert bad and new_edges == [] and new_vertices == []
            assert_matches_scratch(view)
        assert all(isinstance(v, int) for v in view.vertices)

    def test_distance_decreasing_shortcut_edge(self):
        # A late claim creating a shortcut must pull BFS layers inward.
        view = LocalView(0, [1])
        view.integrate([(1, (0, 2))], [], max_degree=4)
        view.integrate([(2, (1, 3))], [], max_degree=4)
        view.integrate([(3, (2, 4))], [], max_degree=4)
        assert_matches_scratch(view)
        assert len(view.layer_sizes()) == 5  # path 0-1-2-3-4
        # Now vertex 4 claims an edge straight back to... a new vertex 5 that
        # is also claimed adjacent to 1, shortening 5's would-be distance.
        view.integrate([(4, (3, 5))], [], max_degree=4)
        assert_matches_scratch(view)
        view.integrate([(5, (1, 4))], [], max_degree=4)
        assert_matches_scratch(view)

    def test_disconnected_claims_stay_out_of_layers(self):
        # A claim about vertices unreachable from the owner contributes to the
        # vertex count (and interior bookkeeping) but not to BFS layers.
        view = LocalView(0, [1])
        view.integrate([(50, (51, 52))], [60], max_degree=4)
        assert_matches_scratch(view)
        reachable = set().union(*[set(p) for p in view.layer_prefixes()])
        assert 50 not in reachable and 60 not in reachable
        assert 50 in view.vertices and 60 in view.vertices


# --------------------------------------------------------------------------- #
# Bitset LocalView vs the retained set-based reference implementation
# --------------------------------------------------------------------------- #
def assert_views_equal(bitset: LocalView, reference: SetBasedLocalView):
    """Every observable of both implementations must agree."""
    assert set(bitset.vertices) == set(reference.vertices)
    assert bitset.size() == reference.size()
    assert dict(bitset.edge_sets) == dict(reference.edge_sets)
    bit_adj = bitset.adjacency()
    ref_adj = reference.adjacency()
    assert {v: set(nbrs) for v, nbrs in bit_adj.items()} == {
        v: set(nbrs) for v, nbrs in ref_adj.items()
    }
    assert [set(p) for p in bitset.layer_prefixes()] == [
        set(p) for p in reference.layer_prefixes()
    ]
    assert bitset.layer_sizes() == reference.layer_sizes()
    assert bitset.interior_set() == reference.interior_set()
    assert bitset.expansion_check_candidates() == reference.expansion_check_candidates()


def drive_both(bitset, reference, entries, vertices, max_degree=MAX_DEGREE):
    """Feed both views one delta; their results (or raises) must agree."""
    try:
        got = bitset.integrate(entries, vertices, max_degree=max_degree)
    except (TypeError, ValueError) as bitset_exc:
        with pytest.raises(type(bitset_exc)):
            reference.integrate(entries, vertices, max_degree=max_degree)
        # Claims preceding the raising one were integrated by both.
        assert_views_equal(bitset, reference)
        return None
    expected = reference.integrate(entries, vertices, max_degree=max_degree)
    assert got == expected
    assert_views_equal(bitset, reference)
    return got


class TestBitsetMatchesSetBasedReference:
    def make_pair(self, own_id, neighbors):
        return LocalView(own_id, neighbors), SetBasedLocalView(own_id, neighbors)

    def test_randomized_fuzz_sequences(self):
        # The same Byzantine malformed-payload fuzzer that drives the
        # scratch-comparison tests, replayed against both implementations.
        for seed in range(25):
            rng = random.Random(10_000 + seed)
            degree = rng.randrange(2, MAX_DEGREE + 1)
            neighbors = [101 + i for i in range(degree)]
            bitset, reference = self.make_pair(100, neighbors)
            for step in range(20):
                entries = [
                    random_edge_entry(rng, bitset, fresh_base=2000 + 100 * step)
                    for _ in range(rng.randrange(1, 4))
                ]
                vertices = random_vertices(rng, fresh_base=2000 + 100 * step)
                drive_both(bitset, reference, entries, vertices)

    def test_non_int_ids_flagged_identically(self):
        bitset, reference = self.make_pair(0, [1, 2])
        for entries, vertices in [
            ([("evil", (1, 2))], []),
            ([(3.0, (1, 2))], []),
            ([(3, (1, "x"))], []),
            ([(3, (1, 2.0))], []),
            ([(None, ())], ["ghost", None, 4.5]),
        ]:
            got = drive_both(bitset, reference, entries, vertices)
            assert got is not None and got[0] is True

    def test_conflicting_edge_set_claims(self):
        bitset, reference = self.make_pair(0, [1])
        assert drive_both(bitset, reference, [(5, (6, 7))], []) == (
            False,
            [(5, (6, 7))],
            [5, 6, 7],
        )
        # Same claim again (canonical and permuted): silently deduplicated.
        assert drive_both(bitset, reference, [(5, (6, 7))], []) == (False, [], [])
        assert drive_both(bitset, reference, [(5, (7, 6))], []) == (False, [], [])
        # Set-equal re-announcement in a *list* container (bypasses the
        # interner's value table): silent both times, and later fresh claims
        # must still integrate (regression: transient uncached records used
        # to leak recyclable ids into the seen-entries set).
        assert drive_both(bitset, reference, [(5, [6, 7])], []) == (False, [], [])
        assert drive_both(bitset, reference, [(5, [7, 6])], []) == (False, [], [])
        assert drive_both(bitset, reference, [(6, (5, 7))], []) == (
            False,
            [(6, (5, 7))],
            [],
        )
        # Conflicting claim for the settled node 5: flagged, not integrated.
        assert drive_both(bitset, reference, [(5, (8, 9))], []) == (True, [], [])
        # Float re-announcement that compares equal to the settled ints.
        assert drive_both(bitset, reference, [(5, (6.0, 7.0))], []) == (True, [], [])
        # Degree-bound violation and self-loop claims.
        assert drive_both(
            bitset, reference, [(10, tuple(range(20, 20 + MAX_DEGREE + 2)))], []
        ) == (True, [], [])
        assert drive_both(bitset, reference, [(11, (11, 12))], []) == (True, [], [])

    def test_unhashable_edge_container_raises_in_both(self):
        bitset, reference = self.make_pair(0, [1])
        # An int node id with an edge container whose elements are unhashable
        # raises out of integrate in both implementations (the protocol
        # treats the whole message as inconsistent).
        assert (
            drive_both(bitset, reference, [(5, (6, [7]))], []) is None
        )

    def test_shared_interner_matches_reference(self):
        # Two bitset views sharing one per-run ClaimInterner (as
        # run_local_counting wires them) and re-broadcasting each other's
        # singleton delta entries must track two independent reference views.
        interner = ClaimInterner()
        bit_a = LocalView(0, [1], interner=interner)
        bit_b = LocalView(1, [0], interner=interner)
        ref_a = SetBasedLocalView(0, [1])
        ref_b = SetBasedLocalView(1, [0])
        rng = random.Random(7)
        pending_b = []
        for step in range(12):
            entries = [
                random_edge_entry(rng, bit_a, fresh_base=3000 + 200 * step)
                for _ in range(rng.randrange(1, 3))
            ]
            _, new_a, _ = bit_a.integrate(entries, [], max_degree=MAX_DEGREE)
            _, ref_new_a, _ = ref_a.integrate(entries, [], max_degree=MAX_DEGREE)
            assert new_a == ref_new_a
            assert_views_equal(bit_a, ref_a)
            pending_b.extend(new_a)
            # b integrates a's forwarded singleton entries (identity-deduped
            # on later arrivals), twice to exercise the duplicate path.
            for _ in range(2):
                got = bit_b.integrate(list(pending_b), [], max_degree=MAX_DEGREE)
                expected = ref_b.integrate(list(pending_b), [], max_degree=MAX_DEGREE)
                assert got == expected
                assert_views_equal(bit_b, ref_b)
            pending_b = []


# --------------------------------------------------------------------------- #
# Dynamic-topology (churn) parity: deletions, retractions, re-announcements
# --------------------------------------------------------------------------- #
def drive_both_dynamic(bitset, reference, entries, vertices, max_degree=MAX_DEGREE):
    """``drive_both`` for the churn path: ``allow_updates=True`` plus a
    from-scratch re-verification of the bitset view after every delta."""
    try:
        got = bitset.integrate(
            entries, vertices, max_degree=max_degree, allow_updates=True
        )
    except (TypeError, ValueError) as bitset_exc:
        with pytest.raises(type(bitset_exc)):
            reference.integrate(
                entries, vertices, max_degree=max_degree, allow_updates=True
            )
        assert_views_equal(bitset, reference)
        assert_matches_scratch(bitset)
        return None
    expected = reference.integrate(
        entries, vertices, max_degree=max_degree, allow_updates=True
    )
    assert got == expected
    assert_views_equal(bitset, reference)
    assert_matches_scratch(bitset)
    return got


class TestDynamicChurnParity:
    """Bitset vs set-based reference under the dynamic (churn) operations."""

    def make_pair(self, own_id, neighbors):
        return LocalView(own_id, neighbors), SetBasedLocalView(own_id, neighbors)

    def test_randomized_churn_interleavings(self):
        # Deletions, retractions, forced updates, stale re-announcements, and
        # malformed Byzantine payloads interleaved in one seeded stream; both
        # implementations must agree observable-for-observable after every
        # operation, and the bitset view must match a from-scratch rebuild.
        for seed in range(20):
            rng = random.Random(50_000 + seed)
            degree = rng.randrange(2, MAX_DEGREE + 1)
            bitset, reference = self.make_pair(100, [101 + i for i in range(degree)])
            history = []
            for step in range(25):
                roll = rng.random()
                settled = sorted(bitset.edge_sets)
                if roll < 0.45 or not settled:
                    entries = [
                        random_edge_entry(rng, bitset, fresh_base=2000 + 100 * step)
                        for _ in range(rng.randrange(1, 4))
                    ]
                    history.extend(entries)
                    drive_both_dynamic(
                        bitset, reference, entries, random_vertices(rng, 2000 + 100 * step)
                    )
                elif roll < 0.60:
                    # Cut a settled edge (sometimes a phantom one).
                    a = rng.choice(settled)
                    edges = sorted(bitset.edge_sets[a])
                    b = rng.choice(edges) if edges and rng.random() < 0.8 else 999_999
                    assert bitset.delete_edge(a, b) == reference.delete_edge(a, b)
                elif roll < 0.72:
                    node = rng.choice(settled if rng.random() < 0.8 else [888_888])
                    assert bitset.retract_claim(node) == reference.retract_claim(node)
                elif roll < 0.84:
                    node = rng.choice(settled)
                    pool = [v for v in sorted(bitset.vertices) if v != node]
                    new_edges = tuple(
                        sorted(rng.sample(pool, k=min(len(pool), rng.randrange(1, MAX_DEGREE))))
                    )
                    assert bitset.update_claim(node, new_edges) == reference.update_claim(
                        node, new_edges
                    )
                elif history:
                    # Stale echo: replay previously delivered payloads.
                    replay = rng.sample(history, k=min(len(history), rng.randrange(1, 4)))
                    drive_both_dynamic(bitset, reference, replay, [])
                assert_views_equal(bitset, reference)
                assert_matches_scratch(bitset)

    def test_delete_edge_then_reannouncement_is_ignored(self):
        # Monotone-per-value semantics: after an edge deletion shrinks both
        # endpoints' claims, echoes of the pre-deletion claims must not flip
        # the views back (they were already integrated once).
        bitset, reference = self.make_pair(0, [1])
        drive_both_dynamic(bitset, reference, [(5, (6, 7)), (6, (5, 7))], [])
        assert bitset.delete_edge(5, 6) is True
        assert reference.delete_edge(5, 6) is True
        assert_views_equal(bitset, reference)
        assert bitset.edge_sets[5] == frozenset({7})
        assert drive_both_dynamic(
            bitset, reference, [(5, (6, 7)), (6, (5, 7))], []
        ) == (False, [], [])
        assert bitset.edge_sets[5] == frozenset({7})
        assert bitset.edge_sets[6] == frozenset({7})

    def test_retract_then_reannouncement_reintegrates(self):
        # Retraction *unsees* the claim, so a later re-announcement (e.g. a
        # re-joining node re-broadcasting its topology) settles it again.
        bitset, reference = self.make_pair(0, [1])
        drive_both_dynamic(bitset, reference, [(5, (6, 7))], [])
        assert bitset.retract_claim(5) is True
        assert reference.retract_claim(5) is True
        assert 5 not in bitset.edge_sets
        assert_views_equal(bitset, reference)
        assert drive_both_dynamic(bitset, reference, [(5, (6, 7))], []) == (
            False,
            [(5, (6, 7))],
            [],
        )
        assert bitset.edge_sets[5] == frozenset({6, 7})

    def test_conflicting_claim_is_update_in_dynamic_mode(self):
        # In static mode a conflicting claim is flagged inconsistent; under
        # churn it is accepted as a topology update (in both implementations).
        bitset, reference = self.make_pair(0, [1])
        drive_both_dynamic(bitset, reference, [(5, (6, 7))], [])
        got = drive_both_dynamic(bitset, reference, [(5, (6, 8))], [])
        assert got == (False, [(5, (6, 8))], [8])
        assert bitset.edge_sets[5] == frozenset({6, 8})
        # ...but the superseded claim stays seen: echoing it does nothing.
        assert drive_both_dynamic(bitset, reference, [(5, (6, 7))], []) == (
            False,
            [],
            [],
        )
        assert bitset.edge_sets[5] == frozenset({6, 8})

    def test_malformed_payloads_mid_churn(self):
        # Byzantine garbage delivered *between* structural deltas must be
        # flagged (never integrated) without corrupting either view.
        bitset, reference = self.make_pair(0, [1, 2])
        drive_both_dynamic(bitset, reference, [(1, (0, 5)), (5, (1, 6))], [])
        assert bitset.delete_edge(1, 5) is True
        assert reference.delete_edge(1, 5) is True
        malformed = [
            ([("evil", (1, 2))], ["ghost"]),
            ([(3.5, (1, 2))], []),
            ([(30, ("x", 31))], []),
            ([(30, tuple(range(40, 40 + MAX_DEGREE + 2)))], []),  # degree bound
            ([(30, (30, 31))], []),  # self-loop
        ]
        for entries, vertices in malformed:
            got = drive_both_dynamic(bitset, reference, entries, vertices)
            assert got is not None and got[0] is True and got[1] == []
        # A fresh honest claim after the garbage still integrates.
        assert drive_both_dynamic(bitset, reference, [(6, (2, 5))], []) == (
            False,
            [(6, (2, 5))],
            [],
        )

    def test_update_claim_flip_back_applies(self):
        # update_claim bypasses the seen-set: restoring the exact pre-churn
        # edge set (a healed link) must take effect even though that canonical
        # value was integrated before.
        bitset, reference = self.make_pair(0, [1])
        drive_both_dynamic(bitset, reference, [(5, (6, 7))], [])
        assert bitset.update_claim(5, (6,)) == reference.update_claim(5, (6,)) == True
        assert bitset.edge_sets[5] == frozenset({6})
        assert_views_equal(bitset, reference)
        assert bitset.update_claim(5, (6, 7)) == reference.update_claim(5, (6, 7)) == True
        assert bitset.edge_sets[5] == frozenset({6, 7})
        assert_views_equal(bitset, reference)
        assert_matches_scratch(bitset)

    def test_settled_entries_agree(self):
        bitset, reference = self.make_pair(0, [1])
        drive_both_dynamic(bitset, reference, [(5, (6, 7)), (6, (5, 7))], [])
        bitset.delete_edge(5, 7)
        reference.delete_edge(5, 7)
        assert set(bitset.settled_entries()) == set(reference.settled_entries())
