"""Tests for the parallel sweep-runner subsystem (src/repro/runner/)."""

import json

import pytest

from repro.cli import main
from repro.experiments import e3_benign, e12_scaling
from repro.runner import (
    MISSING,
    ArtifactStore,
    SweepConfig,
    SweepRunner,
    registered_tasks,
    resolve_task,
    run_task,
    sweep_task,
)


@sweep_task("test.echo")
def _echo_task(*, value, scale=1):
    """Trivial task used by the unit tests (fork workers inherit it)."""
    if isinstance(value, (int, float)):
        return value * scale
    return value


class TestSweepConfig:
    def test_key_is_stable_and_param_order_independent(self):
        a = SweepConfig("t", {"x": 1, "y": 2})
        b = SweepConfig("t", {"y": 2, "x": 1})
        assert a.key() == b.key()
        assert a.key() == SweepConfig("t", {"x": 1, "y": 2}).key()

    def test_key_differs_across_params_and_task(self):
        base = SweepConfig("t", {"x": 1})
        assert base.key() != SweepConfig("t", {"x": 2}).key()
        assert base.key() != SweepConfig("u", {"x": 1}).key()

    def test_non_json_params_rejected_at_hash_time(self):
        with pytest.raises(TypeError):
            SweepConfig("t", {"x": object()}).key()

    def test_non_finite_params_rejected_at_construction(self):
        # Regression: allow_nan used to smuggle NaN/Infinity tokens into
        # content hashes and artifact files as non-standard JSON.
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError, match="finite"):
                SweepConfig("t", {"x": bad})
        with pytest.raises(ValueError, match=r"params\.outer\[1\]\.deep"):
            SweepConfig("t", {"outer": [1.0, {"deep": float("nan")}]})

    def test_canonical_json_rejects_non_finite(self):
        from repro.runner import canonical_json

        with pytest.raises(ValueError, match="NaN/Infinity"):
            canonical_json({"x": float("inf")})
        assert canonical_json({"b": 1, "a": [1.5, None]}) == '{"a":[1.5,null],"b":1}'


class TestRegistry:
    def test_registered_task_resolves(self):
        assert resolve_task("test.echo") is _echo_task
        assert run_task("test.echo", {"value": 3, "scale": 2}) == 6

    def test_unknown_task_raises_with_options(self):
        with pytest.raises(KeyError, match="unknown sweep task"):
            resolve_task("no.such.task")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            sweep_task("test.echo")(lambda: None)

    def test_experiment_tasks_resolve_lazily(self):
        # Resolving an experiment task by name alone must work (this is what
        # freshly spawned worker processes rely on).  The scenario-based
        # drivers all compile to the generic scenario.run task; E6 keeps a
        # driver-specific task.
        assert callable(resolve_task("scenario.run"))
        assert "e6.trial" in registered_tasks()


class TestArtifactStore:
    def test_store_and_load_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        config = SweepConfig("test.echo", {"value": 5})
        assert store.load(config) is MISSING
        path = store.store(config, {"answer": 5})
        assert path.exists()
        assert path.parent.name == "test.echo"
        assert path.stem == config.key()
        assert store.load(config) == {"answer": 5}

    def test_artifact_records_config(self, tmp_path):
        store = ArtifactStore(tmp_path)
        config = SweepConfig("test.echo", {"value": 7})
        path = store.store(config, 7)
        document = json.loads(path.read_text())
        assert document["config"] == {"task": "test.echo", "params": {"value": 7}}

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        config = SweepConfig("test.echo", {"value": 1})
        path = store.store(config, 1)
        path.write_text("{not json")
        assert store.load(config) is MISSING

    def test_none_result_is_not_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        config = SweepConfig("test.echo", {"value": None})
        store.store(config, None)
        assert store.load(config) is None


class TestArtifactStoreConcurrency:
    def test_concurrent_writers_never_produce_torn_reads(self, tmp_path):
        """Hammer one artifact path from several threads while reading it:
        every read must see a complete document (the unique-temp-file +
        os.replace write makes torn or interleaved writes impossible)."""
        import threading

        store = ArtifactStore(tmp_path)
        config = SweepConfig("test.echo", {"value": 42})
        payload = {"rows": list(range(200))}
        errors = []

        def write(worker):
            for _ in range(30):
                store.store(config, payload, meta={"worker": worker})

        def read():
            for _ in range(200):
                loaded = store.load(config)
                if loaded is not MISSING and loaded != payload:
                    errors.append(loaded)

        threads = [threading.Thread(target=write, args=(i,)) for i in range(4)]
        threads += [threading.Thread(target=read) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.load(config) == payload
        # No orphaned temp files once all writers finished.
        assert list((tmp_path / "test.echo").glob("*.tmp")) == []

    def test_failed_write_leaves_no_temp_file(self, tmp_path):
        store = ArtifactStore(tmp_path)
        config = SweepConfig("test.echo", {"value": 1})
        with pytest.raises(TypeError):
            store.store(config, object())
        assert list((tmp_path / "test.echo").glob("*")) == []


class TestProgressLine:
    """The sweep-level k/N progress line, unified across backends."""

    @staticmethod
    def _stderr_of(capsys):
        return capsys.readouterr().err

    def test_serial_progress_opt_in(self, capsys):
        # Regression: the line used to be silently pool-only; progress=True
        # must show it for workers=1 sweeps too.
        configs = [SweepConfig("test.echo", {"value": v}) for v in range(3)]
        SweepRunner(progress=True).run(configs)
        err = self._stderr_of(capsys)
        assert "[sweep] 3/3 tasks" in err
        assert "ETA" in err

    def test_progress_counts_cache_prefills(self, tmp_path, capsys):
        configs = [SweepConfig("test.echo", {"value": v}) for v in range(4)]
        SweepRunner(artifact_dir=tmp_path).run(configs[:3])
        capsys.readouterr()
        runner = SweepRunner(artifact_dir=tmp_path, progress=True)
        runner.run(configs)
        err = self._stderr_of(capsys)
        # k/N is honest: the final tick reports all 4 configs done, with the
        # 3 cache hits called out.
        assert "[sweep] 4/4 tasks (3 cached)" in err
        assert (runner.last_cached, runner.last_executed) == (3, 1)

    def test_progress_false_silences_parallel_sweeps(self, capsys):
        configs = [SweepConfig("test.echo", {"value": v}) for v in range(4)]
        SweepRunner(workers=2, progress=False).run(configs)
        assert "[sweep]" not in self._stderr_of(capsys)

    def test_progress_default_off_when_not_a_tty(self, capsys):
        configs = [SweepConfig("test.echo", {"value": v}) for v in range(3)]
        SweepRunner().run(configs)
        assert "[sweep]" not in self._stderr_of(capsys)


class TestSweepRunner:
    def test_results_in_config_order(self):
        configs = [SweepConfig("test.echo", {"value": v}) for v in (3, 1, 2)]
        assert SweepRunner().run(configs) == [3, 1, 2]

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=0)

    def test_results_canonicalized_like_json(self):
        # Tuples come back as lists whether computed fresh or read from an
        # artifact -- the runner normalizes both paths identically.
        configs = [SweepConfig("test.echo", {"value": [1, 2]})]
        assert SweepRunner().run(configs) == [[1, 2]]

    def test_artifact_cache_hit_on_rerun(self, tmp_path):
        configs = [SweepConfig("test.echo", {"value": v}) for v in range(4)]
        runner = SweepRunner(artifact_dir=tmp_path)
        first = runner.run(configs)
        assert (runner.last_cached, runner.last_executed) == (0, 4)
        second = runner.run(configs)
        assert (runner.last_cached, runner.last_executed) == (4, 0)
        assert first == second

    def test_force_recomputes_despite_cache(self, tmp_path):
        configs = [SweepConfig("test.echo", {"value": 1})]
        SweepRunner(artifact_dir=tmp_path).run(configs)
        forced = SweepRunner(artifact_dir=tmp_path, force=True)
        assert forced.run(configs) == [1]
        assert (forced.last_cached, forced.last_executed) == (0, 1)

    def test_parallel_matches_serial(self):
        configs = [
            SweepConfig("test.echo", {"value": v, "scale": 3}) for v in range(6)
        ]
        assert SweepRunner(workers=3).run(configs) == SweepRunner().run(configs)

    def test_run_experiment_by_name(self):
        result = SweepRunner().run_experiment("e3", sizes=(64,), trials=1)
        assert result.experiment == "E3"
        with pytest.raises(KeyError):
            SweepRunner().run_experiment("e99")


class TestWorkerEquivalence:
    """workers=1 and workers>1 sweeps must produce identical tables."""

    @staticmethod
    def _rendered(result):
        return result.render()

    def test_e3_parallel_table_identical(self):
        kwargs = dict(sizes=(64, 128), trials=2, seed=0)
        serial = e3_benign.run_experiment(runner=SweepRunner(workers=1), **kwargs)
        parallel = e3_benign.run_experiment(runner=SweepRunner(workers=4), **kwargs)
        assert serial.rows == parallel.rows
        assert self._rendered(serial) == self._rendered(parallel)

    def test_e12_parallel_table_identical(self):
        kwargs = dict(
            local_sizes=(64, 128), congest_sizes=(64,), congest_byzantine_counts=(1, 2)
        )
        serial = e12_scaling.run_experiment(runner=SweepRunner(workers=1), **kwargs)
        parallel = e12_scaling.run_experiment(runner=SweepRunner(workers=4), **kwargs)
        assert serial.rows == parallel.rows
        assert serial.notes == parallel.notes
        assert self._rendered(serial) == self._rendered(parallel)

    def test_e3_cached_rerun_table_identical(self, tmp_path):
        kwargs = dict(sizes=(64,), trials=1, seed=0)
        fresh = e3_benign.run_experiment(
            runner=SweepRunner(workers=2, artifact_dir=tmp_path), **kwargs
        )
        rerun_runner = SweepRunner(workers=1, artifact_dir=tmp_path)
        cached = e3_benign.run_experiment(runner=rerun_runner, **kwargs)
        assert rerun_runner.last_executed == 0
        assert fresh.rows == cached.rows


class TestCliSweep:
    def test_sweep_unknown_experiment(self, capsys):
        assert main(["sweep", "e99"]) == 2

    def test_sweep_command_runs_with_artifacts(self, capsys, monkeypatch, tmp_path):
        import repro.experiments.e5_treelike as e5

        original = e5.run_experiment
        monkeypatch.setattr(
            e5,
            "run_experiment",
            lambda **kw: original(sizes=(256,), degrees=(8,), trials=1, **kw),
        )
        code = main(
            ["sweep", "e5", "--workers", "2", "--artifact-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Lemma 2" in out
        assert "executed -> artifacts in" in out
        # Second invocation is served from the artifact cache.
        assert main(["sweep", "e5", "--artifact-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "1 cached, 0 executed" in out
