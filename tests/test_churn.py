"""Tests for the dynamic-topology subsystem: churn schedules through the
engine (delta application, departed-vs-halted, re-join slots), the scenario
axis (validation, serialization, cache-key stability), and the dynamics
metrics (``rounds_to_reconverge`` / ``stale_estimate_error``)."""

import json
from typing import List, Tuple

import pytest

from repro.graphs.generators import cycle_graph, path_graph
from repro.graphs.hnd import hnd_random_regular_graph
from repro.scenarios import (
    CHURN,
    ComponentSpec,
    Scenario,
    UnknownComponentError,
    build_churn,
    materialize,
)
from repro.simulator.byzantine import Adversary, AdversaryView
from repro.simulator.churn import ChurnSchedule, TopologyDelta
from repro.simulator.engine import SynchronousEngine
from repro.simulator.messages import Message
from repro.simulator.metrics import SimulationMetrics
from repro.simulator.network import Network
from repro.simulator.node import NodeContext, Outbox, Protocol


# --------------------------------------------------------------------------- #
# Probe protocol
# --------------------------------------------------------------------------- #
class ProbeProtocol(Protocol):
    """Broadcasts every round; logs inbox senders, topology changes, start."""

    def __init__(self, ctx: NodeContext, halt_round: int = 10_000) -> None:
        self.halt_round = halt_round
        self.started_at = None
        self.inbox_log: List[Tuple[int, Tuple[int, ...]]] = []
        self.topology_log: List[Tuple[int, Tuple[int, ...], Tuple[int, ...]]] = []
        self._decided = False

    @property
    def decided(self) -> bool:
        return self._decided

    @property
    def estimate(self):
        return 1.0 if self._decided else None

    def on_start(self, ctx: NodeContext) -> Outbox:
        self.started_at = ctx.round
        msg = Message.make("probe", ctx.round)
        return {v: [msg.clone()] for v in ctx.neighbors}

    def on_round(self, ctx: NodeContext, inbox) -> Outbox:
        self.inbox_log.append((ctx.round, tuple(sorted(m.sender for m in inbox))))
        if ctx.round >= self.halt_round:
            self._decided = True
            return {}
        msg = Message.make("probe", ctx.round)
        return {v: [msg.clone()] for v in ctx.neighbors}

    def on_topology_change(self, ctx, added_neighbors, removed_neighbors) -> None:
        self.topology_log.append(
            (ctx.round, tuple(sorted(added_neighbors)), tuple(sorted(removed_neighbors)))
        )


class SpyAdversary(Adversary):
    """Records which honest protocols/outboxes each round's view exposes."""

    def __init__(self):
        self.views: List[Tuple[int, frozenset, dict]] = []

    def act(self, view: AdversaryView):
        self.views.append(
            (view.round, frozenset(view.honest_protocols), dict(view.honest_outboxes))
        )
        return {}


def run_probe(graph, churn, *, byzantine=frozenset(), rounds=8, adversary=None):
    engine = SynchronousEngine(
        Network(graph, byzantine),
        ProbeProtocol,
        adversary=adversary,
        seed=0,
        churn=churn,
        stop_condition=lambda protocols, executed: executed >= rounds,
    )
    result = engine.run()
    return engine, result


# --------------------------------------------------------------------------- #
# Schedule data type
# --------------------------------------------------------------------------- #
class TestChurnSchedule:
    def test_from_events_normalizes_and_sorts(self):
        schedule = ChurnSchedule.from_events(
            {3: {"remove_edges": [(5, 2)], "add_edges": [[7, 1]]}, "2": {"leave_nodes": [4]}}
        )
        assert schedule.rounds() == (2, 3)
        assert schedule.last_round == 3
        delta = schedule.delta_for_round(3)
        assert delta.remove_edges == ((2, 5),)
        assert delta.add_edges == ((1, 7),)
        assert schedule.delta_for_round(1) is None
        assert schedule.node_indices() == (1, 2, 4, 5, 7)
        assert bool(schedule)

    def test_empty_deltas_dropped(self):
        schedule = ChurnSchedule({5: TopologyDelta()})
        assert not schedule
        assert schedule.last_round == 0
        assert schedule.rounds() == ()

    def test_rejects_round_zero(self):
        with pytest.raises(ValueError, match="round 1 on"):
            ChurnSchedule({0: TopologyDelta(leave_nodes=(1,))})

    def test_rejects_self_loop_edges(self):
        with pytest.raises(ValueError, match="self-loop"):
            ChurnSchedule.from_events({2: {"add_edges": [(3, 3)]}})


# --------------------------------------------------------------------------- #
# Engine delta mechanics
# --------------------------------------------------------------------------- #
class TestEngineChurn:
    def test_edge_removal_stops_delivery_and_notifies(self):
        # Path 0-1-2; the (1, 2) edge is cut before round 3.
        graph = path_graph(3)
        churn = ChurnSchedule.from_events({3: {"remove_edges": [(1, 2)]}})
        engine, result = run_probe(graph, churn, rounds=6)
        p1, p2 = engine.protocols[1], engine.protocols[2]
        # The in-flight round-2 messages crossing the cut edge are purged:
        # from round 3 on neither endpoint hears the other.
        for round_number, senders in p1.inbox_log:
            if round_number >= 3:
                assert 2 not in senders
        for round_number, senders in p2.inbox_log:
            if round_number >= 3:
                assert 1 not in senders
            else:
                assert senders == (1,)
        # Both endpoints were notified once, between rounds: the hook runs
        # before round 3, so ctx.round still reads the last executed round.
        assert p1.topology_log == [(2, (), (2,))]
        assert p2.topology_log == [(2, (), (1,))]
        # Contexts track the new adjacency.
        assert engine._contexts[1].neighbors == (0,)
        assert engine._contexts[2].neighbors == ()
        assert result.metrics.churn_rounds == [3]
        assert result.metrics.churn_events == 1

    def test_edge_addition_notifies_and_delivers(self):
        # Path 0-1-2 gains the chord (0, 2) before round 3.
        graph = path_graph(3)
        churn = ChurnSchedule.from_events({3: {"add_edges": [(0, 2)]}})
        engine, result = run_probe(graph, churn, rounds=6)
        p0, p2 = engine.protocols[0], engine.protocols[2]
        assert p0.topology_log == [(2, (2,), ())]
        assert p2.topology_log == [(2, (0,), ())]
        # The new edge carries traffic from the round after the delta on
        # (round 3's sends are delivered in round 4).
        assert any(0 in senders for r, senders in p2.inbox_log if r >= 4)
        assert all(0 not in senders for r, senders in p2.inbox_log if r < 4)
        # Idempotence: adding a present edge is ignored.
        churn2 = ChurnSchedule.from_events({3: {"add_edges": [(0, 1)]}})
        _, result2 = run_probe(graph, churn2, rounds=4)
        assert result2.metrics.churn_events == 0
        assert result2.metrics.last_churn_round is None

    def test_leave_is_departed_not_halted(self):
        graph = cycle_graph(6)
        churn = ChurnSchedule.from_events({2: {"leave_nodes": [3]}})
        engine, result = run_probe(graph, churn, rounds=6)
        assert result.departed == frozenset({3})
        departed_protocol = engine.protocols[3]
        # The protocol was cut out, not halted: it never decided and simply
        # stopped being scheduled (its last on_round was round 1).
        assert not departed_protocol.halted
        assert departed_protocol.inbox_log[-1][0] == 1
        # No neighbor hears node 3 after the departure round -- including the
        # in-flight messages it sent in round 1 (purged, not delivered).
        for v in (2, 4):
            for round_number, senders in engine.protocols[v].inbox_log:
                if round_number >= 2:
                    assert 3 not in senders
        # Its neighbors were notified of the removed edges.
        assert engine.protocols[2].topology_log == [(1, (), (3,))]
        assert engine.protocols[4].topology_log == [(1, (), (3,))]

    def test_rejoin_spawns_fresh_slot_running_on_start(self):
        graph = cycle_graph(6)
        churn = ChurnSchedule.from_events(
            {
                2: {"leave_nodes": [3]},
                4: {"join_nodes": [3], "add_edges": [(2, 3), (3, 4)]},
            }
        )
        engine, result = run_probe(graph, churn, rounds=8)
        assert result.departed == frozenset()
        rejoined = engine.protocols[3]
        # A *fresh* protocol instance: its on_start ran in the join round and
        # its first scheduled on_round is the one after.
        assert rejoined.started_at == 4
        assert rejoined.inbox_log[0][0] == 5
        # The joiner's neighbors see its traffic again after the re-join.
        assert any(
            3 in senders for r, senders in engine.protocols[2].inbox_log if r >= 5
        )
        # Joining without having left is ignored.
        churn2 = ChurnSchedule.from_events({2: {"join_nodes": [1]}})
        engine2, result2 = run_probe(graph, churn2, rounds=4)
        assert engine2.protocols[1].started_at == 0
        assert result2.metrics.churn_events == 0

    def test_out_of_range_node_raises_with_round(self):
        graph = cycle_graph(4)
        churn = ChurnSchedule.from_events({2: {"leave_nodes": [99]}})
        engine = SynchronousEngine(Network(graph, frozenset()), ProbeProtocol, churn=churn)
        with pytest.raises(ValueError, match=r"round 2.*index 99.*\[0, 4\)"):
            engine.run(max_rounds=5)

    def test_zero_churn_keeps_shared_adjacency(self):
        # The static path must not copy the graph's adjacency list (the
        # byte-identity guarantee rests on not touching the old code paths).
        graph = cycle_graph(4)
        static_engine = SynchronousEngine(Network(graph, frozenset()), ProbeProtocol)
        assert static_engine._neighbors is graph.adjacency
        churn_engine = SynchronousEngine(
            Network(graph, frozenset()),
            ProbeProtocol,
            churn=ChurnSchedule.from_events({2: {"leave_nodes": [1]}}),
        )
        assert churn_engine._neighbors is not graph.adjacency
        # The empty schedule is normalized to the static path.
        empty = SynchronousEngine(
            Network(graph, frozenset()), ProbeProtocol, churn=ChurnSchedule({})
        )
        assert empty.churn is None
        assert empty._neighbors is graph.adjacency


class TestHaltedVsDepartedAdversaryVisibility:
    """Regression (halted/departed conflation): a departed node's outbox and
    protocol state must vanish from the adversary's view entirely, while a
    halted node keeps its (empty) outbox entry."""

    def test_departed_state_invisible_halted_state_empty(self):
        graph = cycle_graph(6)
        spy = SpyAdversary()
        # Node 3 departs before round 2; every survivor halts at round 4.
        churn = ChurnSchedule.from_events({2: {"leave_nodes": [3]}})
        engine = SynchronousEngine(
            Network(graph, frozenset({0})),
            lambda ctx: ProbeProtocol(ctx, halt_round=4),
            adversary=spy,
            seed=0,
            churn=churn,
        )
        engine.run(max_rounds=8)
        assert spy.views, "adversary was never consulted"
        for round_number, honest, outboxes in spy.views:
            if round_number < 2:
                assert 3 in honest and 3 in outboxes
                continue
            # Departed: no protocol handle, no outbox key at all.
            assert 3 not in honest
            assert 3 not in outboxes
            # Other honest nodes keep entries; after the halt round their
            # outboxes are the *empty* dict -- present but silent.
            assert 2 in honest and 2 in outboxes
            if round_number > 5:
                assert outboxes[2] == {}

    def test_departed_messages_never_leak_to_byzantine_inboxes(self):
        class InboxSpy(Adversary):
            def __init__(self):
                self.inbox_log = []

            def act(self, view):
                for b, inbox in view.byzantine_inboxes.items():
                    self.inbox_log.extend(
                        (view.round, m.sender) for m in inbox
                    )
                return {}

        graph = cycle_graph(6)
        spy = InboxSpy()
        # Byzantine node 2 is adjacent to honest node 3, which departs
        # before round 2 -- with its round-1 broadcast still in flight.
        churn = ChurnSchedule.from_events({2: {"leave_nodes": [3]}})
        engine = SynchronousEngine(
            Network(graph, frozenset({2})),
            ProbeProtocol,
            adversary=spy,
            seed=0,
            churn=churn,
            stop_condition=lambda protocols, executed: executed >= 6,
        )
        engine.run()
        seen_round_sender = set(spy.inbox_log)
        assert (2, 3) not in seen_round_sender and not any(
            r > 2 and s == 3 for r, s in seen_round_sender
        )


# --------------------------------------------------------------------------- #
# Scenario axis: registry, serialization, validation
# --------------------------------------------------------------------------- #
BASE_SPEC = {
    "graph": {"name": "hnd", "params": {"n": 48, "degree": 6}},
    "adversary": "silent",
    "placement": {"name": "random", "params": {"count": 0}},
    "protocol": "local",
}


class TestChurnScenarioAxis:
    def test_registry_names(self):
        assert CHURN.names() == [
            "burst-partition",
            "edge-flip",
            "node-leave-join",
            "none",
        ]

    def test_round_trip_with_churn_axis(self):
        spec = {
            **BASE_SPEC,
            "churn": {
                "name": "node-leave-join",
                "params": {"count": 2, "start": 6, "absence": 3},
            },
            "seeds": [0, 1],
        }
        scenario = Scenario.from_dict(spec)
        assert scenario.churn.name == "node-leave-join"
        assert Scenario.from_dict(json.loads(scenario.to_json())) == scenario
        assert "churn" in scenario.to_dict()

    def test_default_churn_omitted_from_serialization(self):
        scenario = Scenario.from_dict(dict(BASE_SPEC))
        assert scenario.churn == ComponentSpec("none")
        assert "churn" not in scenario.to_dict()
        # A spelled-out static axis round-trips to the same scenario.
        explicit = Scenario.from_dict({**BASE_SPEC, "churn": "none"})
        assert explicit == scenario
        assert "churn" not in explicit.to_dict()

    def test_cache_key_stable_for_static_specs(self):
        # Pre-churn artifact hashes must be reproducible: an explicit
        # churn=none compiles to the identical cell key as no churn at all.
        implicit = Scenario.from_dict(dict(BASE_SPEC)).compile()[0]
        explicit = Scenario.from_dict({**BASE_SPEC, "churn": "none"}).compile()[0]
        assert "churn" not in implicit.params["spec"]
        assert implicit.key() == explicit.key()
        # A real schedule changes the key.
        churned = Scenario.from_dict(
            {**BASE_SPEC, "churn": {"name": "edge-flip", "params": {"flips": 2}}}
        ).compile()[0]
        assert churned.key() != implicit.key()

    def test_unknown_churn_name_lists_options(self):
        scenario = Scenario.from_dict({**BASE_SPEC, "churn": "meteor-strike"})
        with pytest.raises(UnknownComponentError) as excinfo:
            scenario.validate()
        message = str(excinfo.value)
        for name in CHURN.names():
            assert name in message

    @pytest.mark.parametrize(
        "churn_spec, path",
        [
            (
                {"name": "node-leave-join", "params": {"nodes": [3, 99]}},
                "scenario.churn.params.nodes[1]",
            ),
            (
                {"name": "burst-partition", "params": {"left": [-1, 2]}},
                "scenario.churn.params.left[0]",
            ),
        ],
    )
    def test_out_of_range_node_ids_rejected_with_path(self, churn_spec, path):
        scenario = Scenario.from_dict({**BASE_SPEC, "churn": churn_spec})
        with pytest.raises(ValueError, match=r"outside graph range \[0, 48\)") as excinfo:
            scenario.validate()
        assert path in str(excinfo.value)
        with pytest.raises(ValueError):
            scenario.compile()

    def test_in_range_node_ids_validate(self):
        scenario = Scenario.from_dict(
            {**BASE_SPEC, "churn": {"name": "node-leave-join", "params": {"nodes": [0, 47]}}}
        )
        assert scenario.validate() is scenario

    def test_builders_are_deterministic_in_seed(self):
        graph = hnd_random_regular_graph(32, 4, seed=3)
        first = build_churn("node-leave-join", graph, seed=5, count=3, start=4)
        second = build_churn("node-leave-join", graph, seed=5, count=3, start=4)
        assert first == second
        different = build_churn("node-leave-join", graph, seed=6, count=3, start=4)
        assert first != different

    def test_edge_flip_only_touches_existing_edges(self):
        graph = hnd_random_regular_graph(32, 4, seed=3)
        edges = {
            (u, v) for u in range(graph.n) for v in graph.adjacency[u] if u < v
        }
        schedule = build_churn("edge-flip", graph, seed=7, flips=5, repeats=2)
        for delta in schedule.deltas.values():
            assert set(delta.remove_edges) <= edges
            assert set(delta.add_edges) <= edges

    def test_burst_partition_cuts_and_heals_the_same_edges(self):
        graph = hnd_random_regular_graph(32, 4, seed=3)
        schedule = build_churn("burst-partition", graph, seed=7, at=2, heal_after=3)
        assert schedule.rounds() == (2, 5)
        cut = schedule.delta_for_round(2).remove_edges
        healed = schedule.delta_for_round(5).add_edges
        assert set(cut) == set(healed) and cut

    def test_none_builder_returns_static(self):
        graph = cycle_graph(8)
        assert build_churn("none", graph, seed=0) is None


# --------------------------------------------------------------------------- #
# Dynamics metrics, end to end
# --------------------------------------------------------------------------- #
class TestChurnMetrics:
    def test_record_churn_unit(self):
        metrics = SimulationMetrics()
        metrics.record_churn(3, 0)  # no-op delta
        assert metrics.churn_events == 0 and metrics.last_churn_round is None
        metrics.record_churn(3, 2)
        metrics.record_churn(3, 1)  # same round: events add, round deduped
        metrics.record_churn(7, 4)
        assert metrics.churn_events == 7
        assert metrics.churn_rounds == [3, 7]
        assert metrics.last_churn_round == 7

    def test_materialized_churn_cell_reports_dynamics(self):
        scenario = Scenario.from_dict(
            {
                **BASE_SPEC,
                "churn": {
                    "name": "node-leave-join",
                    "params": {"count": 2, "start": 6, "absence": 3},
                },
            }
        )
        metrics = materialize(scenario, 0).metrics
        assert metrics["churn_events"] > 0
        assert metrics["rounds_to_reconverge"] is not None
        assert metrics["rounds_to_reconverge"] > 0
        assert metrics["stale_estimate_error"] is not None
        assert metrics["stale_estimate_error"] > 0.0
        assert metrics["decided_fraction"] == 1.0

    def test_zero_churn_cell_matches_pre_churn_metrics(self):
        # The dynamics metrics are None-valued on static runs, and an
        # explicit churn=none cell produces the identical metrics dict to a
        # spec with no churn key at all.
        implicit = materialize(Scenario.from_dict(dict(BASE_SPEC)), 0).metrics
        explicit = materialize(
            Scenario.from_dict({**BASE_SPEC, "churn": "none"}), 0
        ).metrics
        assert implicit == explicit
        assert implicit["churn_events"] == 0
        assert implicit["rounds_to_reconverge"] is None
        assert implicit["stale_estimate_error"] is None

    def test_permanent_departure_counts_against_decisions(self):
        from repro.core.local_counting import run_local_counting
        from repro.core.parameters import LocalParameters

        graph = hnd_random_regular_graph(48, 6, seed=0)
        # Node 11 decides in round 3 of the static run; leaving in round 2
        # means it never gets there.
        churn = ChurnSchedule.from_events({2: {"leave_nodes": [11]}})
        run = run_local_counting(
            graph, params=LocalParameters(max_degree=6), seed=0, churn=churn
        )
        assert run.result.departed == frozenset({11})
        assert run.result.metrics.last_churn_round == 2
        outcome = run.outcome
        # The departed node's record survives (undecided), so the decided
        # fraction reflects the loss.
        assert outcome.decided_fraction(over_evaluation_set=False) == pytest.approx(
            47 / 48
        )
