"""Tests for the protocol zoo (src/repro/protocols/) and its registry surface.

Covers the PR-10 cross-protocol properties:

- consistent-hash grouping is a deterministic partition;
- spec-time protocol-param validation rejects out-of-envelope params with the
  offending ``scenario.protocol.params.<key>`` path;
- every registered protocol is deterministic per seed;
- zoo aggregates are identical across the serial / pool / distributed
  backends on a mini-grid;
- Ben-Or decides with probability 1 within the round budget on benign runs;
- ``scenario list`` surfaces the zoo with per-protocol parameter surfaces;
- the committed cross-protocol suite regenerates its golden table.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.graphs import complete_graph, hnd_random_regular_graph
from repro.protocols import (
    assign_groups,
    ring_hash,
    run_benor,
    run_grouped_bft,
)
from repro.runner.distributed import DistributedBackend
from repro.runner.sweep import SweepRunner
from repro.scenarios import PROTOCOLS, Scenario, materialize

EXAMPLES = Path(__file__).parent.parent / "examples"
GOLDEN = Path(__file__).parent / "golden"

#: Mini-scenario protocol params per registered protocol (n=16, degree 4).
MINI_PARAMS = {
    "local": {"gamma": 0.7, "max_degree": 4},
    "congest": {"gamma": 0.5, "d": 4, "max_rounds": 150},
    "benor": {"f": 1, "max_phases": 30},
    "grouped-bft": {"f": 1, "groups": 1},
    "flooding": {},
    "geometric": {},
    "spanning-tree": {},
    "support-estimation": {},
}


def mini_scenario(protocol, params, *, n=16, count=0, behaviour="silent"):
    return {
        "name": f"mini-{protocol}",
        "graph": {"name": "hnd", "params": {"n": n, "degree": 4}, "seed_offset": 0},
        "adversary": {"name": behaviour, "params": {}, "seed_offset": 0},
        "placement": {"name": "spread", "params": {"count": count}, "seed_offset": 0},
        "protocol": {"name": protocol, "params": dict(params), "seed_offset": 0},
        "params": {},
    }


class TestGrouping:
    def test_assign_groups_partitions_nodes(self):
        nodes = tuple(range(40))
        assignment = assign_groups(nodes, 5)
        assert assignment.num_groups == 5
        seen = [u for members in assignment.members for u in members]
        assert sorted(seen) == list(nodes)
        for g, members in enumerate(assignment.members):
            for u in members:
                assert assignment.group_of[u] == g

    def test_leaders_are_min_ring_position_members(self):
        assignment = assign_groups(tuple(range(24)), 3)
        for g, members in enumerate(assignment.members):
            if not members:
                assert assignment.leaders[g] is None
                continue
            expected = min(members, key=lambda u: (ring_hash(("node", u)), u))
            assert assignment.leaders[g] == expected

    def test_assignment_is_deterministic(self):
        a = assign_groups(tuple(range(64)), 4)
        b = assign_groups(tuple(range(64)), 4)
        assert a.members == b.members and a.leaders == b.leaders

    def test_single_group_takes_everything(self):
        assignment = assign_groups((3, 7, 11), 1)
        assert assignment.members == ((3, 7, 11),)


class TestSpecTimeValidation:
    """Satellite 1: invalid protocol params are rejected at spec time with
    the offending path, before any graph is built."""

    def _validate(self, protocol, params, *, n=16):
        Scenario.from_dict(mini_scenario(protocol, params, n=n)).validate()

    def test_unknown_param_names_offending_path(self):
        with pytest.raises(ValueError, match=r"scenario\.protocol\.params\.bogus"):
            self._validate("benor", {"bogus": 1})

    def test_benor_envelope_names_f(self):
        with pytest.raises(ValueError, match=r"scenario\.protocol\.params\.f"):
            self._validate("benor", {"f": 8}, n=16)

    def test_grouped_bft_envelope_names_f(self):
        with pytest.raises(ValueError, match=r"scenario\.protocol\.params\.f"):
            self._validate("grouped-bft", {"f": 6}, n=16)

    def test_grouped_bft_too_many_groups_names_groups(self):
        with pytest.raises(ValueError, match=r"scenario\.protocol\.params\.groups"):
            self._validate("grouped-bft", {"f": 1, "groups": 9}, n=16)

    def test_valid_params_pass(self):
        self._validate("benor", {"f": 3}, n=16)
        self._validate("grouped-bft", {"f": 1, "groups": 2}, n=16)

    def test_validation_runs_before_materialization(self):
        with pytest.raises(ValueError, match=r"scenario\.protocol\.params\."):
            materialize(mini_scenario("benor", {"f": 8}), seed=0)


class TestPerSeedDeterminism:
    """Satellite 3: every registered protocol is a pure function of its
    scenario + seed."""

    @pytest.mark.parametrize("protocol", sorted(MINI_PARAMS))
    def test_registered_protocol_deterministic(self, protocol):
        spec = mini_scenario(protocol, MINI_PARAMS[protocol], count=1)
        first = materialize(spec, seed=3).metrics
        second = materialize(spec, seed=3).metrics
        assert first == second
        # The metrics dict must survive the artifact layer (JSON round-trip).
        assert json.loads(json.dumps(first)) == json.loads(json.dumps(first))

    def test_every_registered_protocol_is_covered(self):
        assert sorted(MINI_PARAMS) == PROTOCOLS.names()


class TestBackendsIdentical:
    def test_zoo_mini_grid_identical_across_backends(self):
        """Serial, pool and distributed execution of the same zoo mini-grid
        produce byte-identical aggregates."""
        configs = []
        for protocol in ("benor", "grouped-bft", "flooding"):
            scenario = Scenario.from_dict(
                {
                    **mini_scenario(protocol, MINI_PARAMS[protocol], count=1),
                    "seeds": [0, 1],
                }
            )
            configs.extend(scenario.compile())
        backends = {
            "serial": SweepRunner(),
            "pool": SweepRunner(workers=2),
            "distributed": SweepRunner(
                backend=DistributedBackend(spawn_workers=2, quiet=True)
            ),
        }
        rows = {
            name: json.dumps(runner.run(configs), sort_keys=True)
            for name, runner in backends.items()
        }
        assert rows["serial"] == rows["pool"] == rows["distributed"]


class TestBenOr:
    def test_decides_with_probability_one_on_benign_runs(self):
        """On a benign complete graph every node decides within the round
        budget, on every seed, and all decisions agree."""
        graph = complete_graph(12)
        for seed in range(6):
            run = run_benor(graph, byzantine=set(), seed=seed, f=1)
            outcome = run.outcome
            assert outcome.decided_fraction() == 1.0, f"seed {seed}"
            assert run.extra_metrics["agreement_reached"] == 1.0, f"seed {seed}"
            assert run.result.rounds_executed <= run.params["max_rounds"]

    def test_deciders_agree_under_silent_byzantine(self):
        graph = complete_graph(16)
        run = run_benor(graph, byzantine={0, 1}, seed=5, f=2)
        assert run.extra_metrics["agreement_reached"] == 1.0


class TestGroupedBft:
    def test_all_honest_nodes_agree(self):
        graph = hnd_random_regular_graph(32, 6, seed=9)
        run = run_grouped_bft(graph, byzantine={0}, seed=2, f=1, groups=2)
        outcome = run.outcome
        assert outcome.decided_fraction() == 1.0
        assert run.extra_metrics["agreement_reached"] == 1.0
        assert run.extra_metrics["groups"] == 2


class TestScenarioListSurface:
    def test_list_shows_zoo_protocols_and_params(self, capsys):
        """Satellite 2: ``scenario list`` names every zoo protocol with its
        docstring one-liner and parameter surface."""
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in PROTOCOLS.names():
            assert name in out
        # Docstring one-liners.
        assert "randomized binary consensus" in out
        assert "OM" in out
        # Optional params render with a trailing "?".
        assert "f?" in out
        assert "groups?" in out
        assert "max_phases?" in out


class TestZooGolden:
    def test_committed_suite_regenerates_golden_table(self, capsys):
        """The committed cross-protocol suite is reproducible from the spec
        alone, byte for byte."""
        code = main(["scenario", "run", str(EXAMPLES / "scenario_zoo_compare.json")])
        assert code == 0
        out = capsys.readouterr().out
        golden = (GOLDEN / "zoo_compare_table.txt").read_text(encoding="utf-8")
        assert out == golden
