"""Unit tests for the core Graph data structure."""

import random

import pytest

from repro.graphs.graph import Graph
from repro.graphs.generators import complete_graph, cycle_graph, path_graph, star_graph


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert g.n == 3
        assert g.num_edges() == 2
        assert g.neighbors(1) == (0, 2)

    def test_from_edges_removes_duplicates(self):
        g = Graph.from_edges(2, [(0, 1), (1, 0), (0, 1)])
        assert g.num_edges() == 1

    def test_from_edges_removes_self_loops(self):
        g = Graph.from_edges(2, [(0, 0), (0, 1)])
        assert g.num_edges() == 1
        assert g.neighbors(0) == (1,)

    def test_adjacency_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Graph(n=3, adjacency=[(1,), (0,)])

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            Graph(n=-1, adjacency=[])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(2, [(0, 5)])

    def test_node_ids_unique(self):
        g = Graph.from_edges(50, [(i, i + 1) for i in range(49)])
        assert len(set(g.node_ids)) == 50

    def test_explicit_node_ids(self):
        g = Graph.from_edges(2, [(0, 1)], node_ids=[10, 20])
        assert g.node_id(0) == 10
        assert g.index_of_id(20) == 1

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(ValueError):
            Graph(n=2, adjacency=[(1,), (0,)], node_ids=[5, 5])

    def test_wrong_number_of_node_ids_rejected(self):
        with pytest.raises(ValueError):
            Graph(n=2, adjacency=[(1,), (0,)], node_ids=[5])

    def test_empty_graph(self):
        g = Graph(n=0, adjacency=[])
        assert g.n == 0
        assert g.num_edges() == 0
        assert g.max_degree() == 0
        assert g.is_connected()


class TestAccessors:
    def test_degree_and_max_degree(self):
        g = star_graph(5)
        assert g.degree(0) == 4
        assert g.degree(1) == 1
        assert g.max_degree() == 4
        assert g.min_degree() == 1

    def test_average_degree(self):
        g = cycle_graph(10)
        assert g.average_degree() == pytest.approx(2.0)

    def test_edges_iteration_sorted_pairs(self):
        g = Graph.from_edges(3, [(2, 0), (1, 2)])
        assert sorted(g.edges()) == [(0, 2), (1, 2)]

    def test_has_edge(self):
        g = path_graph(4)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 3)

    def test_nodes_range(self):
        g = path_graph(4)
        assert list(g.nodes()) == [0, 1, 2, 3]

    def test_len(self):
        assert len(cycle_graph(7)) == 7


class TestStructure:
    def test_is_regular(self):
        assert cycle_graph(6).is_regular()
        assert not star_graph(4).is_regular()

    def test_is_connected_true(self):
        assert cycle_graph(9).is_connected()

    def test_is_connected_false(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert not g.is_connected()

    def test_connected_components(self):
        g = Graph.from_edges(5, [(0, 1), (2, 3)])
        comps = g.connected_components()
        assert sorted(map(tuple, comps)) == [(0, 1), (2, 3), (4,)]

    def test_diameter_cycle(self):
        assert cycle_graph(8).diameter() == 4

    def test_diameter_path(self):
        assert path_graph(5).diameter() == 4

    def test_diameter_complete(self):
        assert complete_graph(6).diameter() == 1

    def test_diameter_disconnected_raises(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            g.diameter()

    def test_eccentricity(self):
        g = path_graph(5)
        assert g.eccentricity(0) == 4
        assert g.eccentricity(2) == 2

    def test_bfs_distances(self):
        g = path_graph(4)
        assert g.bfs_distances(0) == [0, 1, 2, 3]

    def test_bfs_distances_unreachable(self):
        g = Graph.from_edges(3, [(0, 1)])
        assert g.bfs_distances(0)[2] == -1


class TestConversionAndCopy:
    def test_to_from_networkx_roundtrip(self):
        g = cycle_graph(12)
        nx_graph = g.to_networkx()
        back = Graph.from_networkx(nx_graph)
        assert back.n == g.n
        assert sorted(back.edges()) == sorted(g.edges())

    def test_copy_is_independent(self):
        g = cycle_graph(5)
        copy = g.copy()
        assert copy.adjacency == g.adjacency
        assert copy is not g
        assert copy.node_ids == g.node_ids

    def test_relabel_ids_changes_ids_not_structure(self):
        g = cycle_graph(5)
        relabeled = g.relabel_ids(random.Random(99))
        assert sorted(relabeled.edges()) == sorted(g.edges())
        assert set(relabeled.node_ids) != set(g.node_ids)

    def test_node_ids_do_not_leak_size(self):
        # IDs are drawn from a 62-bit space regardless of n.
        small = cycle_graph(4)
        assert all(nid < 2**62 for nid in small.node_ids)
        assert max(small.node_ids) > 4  # not 0..n-1
