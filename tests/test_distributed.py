"""Tests for the distributed sweep backend (src/repro/runner/distributed/).

The fault-tolerance tests spawn real worker processes (``python -m
repro.cli worker``) against a real TCP broker on localhost, so they take a
few seconds; the support tasks they lease live in
:mod:`repro.runner.testing` (an importable module -- tasks defined in this
file would not resolve inside a freshly started worker daemon).
"""

import json
import socket
import time

import pytest

import repro.runner.testing  # noqa: F401  (registers testing.* sweep tasks)
from repro.cli import main
from repro.experiments import e3_benign
from repro.runner import (
    ArtifactStore,
    Broker,
    BrokerError,
    DistributedBackend,
    PoolBackend,
    SerialBackend,
    SweepConfig,
    SweepRunner,
    resolve_backend,
    resolve_task,
)
from repro.runner.distributed import spawn_loopback_worker
from repro.runner.distributed.protocol import (
    PROTOCOL_VERSION,
    format_address,
    parse_address,
    read_message,
    reader_for,
    send_message,
)


def _work_items(configs):
    """The runner's (index, task, params, module) items for ``configs``."""
    return [
        (
            index,
            config.task,
            dict(config.params),
            getattr(resolve_task(config.task), "__module__", None),
        )
        for index, config in enumerate(configs)
    ]


def _wait_until(predicate, timeout_s=10.0, interval_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


# --------------------------------------------------------------------------- #
# Wire protocol
# --------------------------------------------------------------------------- #
class TestProtocol:
    def test_message_round_trip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            message = {
                "type": "result",
                "lease": 3,
                "id": 7,
                "result": {"rounds": 12, "fraction": 0.5, "ids": [1, 2]},
                "meta": {"wall_clock_s": 0.25, "worker": 123},
            }
            send_message(left, message)
            send_message(left, {"type": "heartbeat", "lease": 3})
            reader = reader_for(right)
            assert read_message(reader) == message
            assert read_message(reader) == {"type": "heartbeat", "lease": 3}
            left.close()
            assert read_message(reader) is None  # EOF
        finally:
            for sock in (left, right):
                try:
                    sock.close()
                except OSError:
                    pass

    def test_garbage_line_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"not json\n")
            left.sendall(b'["a", "list"]\n')
            reader = reader_for(right)
            with pytest.raises(ValueError):
                read_message(reader)
            with pytest.raises(ValueError):
                read_message(reader)
        finally:
            left.close()
            right.close()

    def test_parse_and_format_address(self):
        assert parse_address("10.0.0.5:9876") == ("10.0.0.5", 9876)
        assert parse_address(":9876") == ("0.0.0.0", 9876)
        assert format_address(("localhost", 80)) == "localhost:80"
        for bad in ("nohost", "host:", "host:abc", "9876"):
            with pytest.raises(ValueError):
                parse_address(bad)


# --------------------------------------------------------------------------- #
# Backend resolution
# --------------------------------------------------------------------------- #
class TestBackendResolution:
    def test_default_derives_from_workers(self):
        assert isinstance(SweepRunner().backend, SerialBackend)
        pool = SweepRunner(workers=3).backend
        assert isinstance(pool, PoolBackend) and pool.workers == 3

    def test_names_resolve(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("pool", workers=4), PoolBackend)
        distributed = resolve_backend("distributed", workers=4)
        assert isinstance(distributed, DistributedBackend)
        assert distributed.spawn_workers == 4

    def test_instance_passes_through(self):
        backend = DistributedBackend(spawn_workers=2, quiet=True)
        assert SweepRunner(backend=backend).backend is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            SweepRunner(backend="carrier-pigeon")

    def test_cli_listen_requires_distributed(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "e3", "--listen", "127.0.0.1:9999"])


# --------------------------------------------------------------------------- #
# Loopback equivalence: serial == pool == distributed, artifacts included
# --------------------------------------------------------------------------- #
class TestBackendEquivalence:
    def test_e3_mini_sweep_identical_across_backends(self, tmp_path):
        """Property: all three backends produce identical results *and*
        identical artifact documents for a seeded E3 mini-sweep."""
        configs = e3_benign.sweep_configs(sizes=(48,), trials=2, seed=0)
        backends = {
            "serial": SerialBackend(),
            "pool": PoolBackend(2),
            "distributed": DistributedBackend(spawn_workers=2, quiet=True),
        }
        rows = {}
        for name, backend in backends.items():
            runner = SweepRunner(backend=backend, artifact_dir=tmp_path / name)
            rows[name] = runner.run(configs)
            assert runner.last_executed == len(configs)
        assert rows["serial"] == rows["pool"] == rows["distributed"]

        def documents(name):
            store = ArtifactStore(tmp_path / name)
            docs = []
            for config in configs:
                document = json.loads(store.path_for(config).read_text())
                # meta legitimately differs (pids, hosts, wall-clocks);
                # config + result must be byte-identical.
                docs.append(
                    json.dumps(
                        {"config": document["config"], "result": document["result"]},
                        sort_keys=True,
                    )
                )
            return docs

        assert documents("serial") == documents("pool") == documents("distributed")

    def test_e3_suite_table_identical_and_meta_tagged(self):
        kwargs = dict(sizes=(48,), trials=2, seed=1)
        serial = e3_benign.run_experiment(runner=SweepRunner(), **kwargs)
        runner = SweepRunner(
            backend=DistributedBackend(spawn_workers=2, quiet=True)
        )
        distributed = e3_benign.run_experiment(runner=runner, **kwargs)
        assert serial.rows == distributed.rows
        assert serial.render() == distributed.render()
        # Distributed metas carry the extra provenance fields.
        for meta in runner.last_metas:
            assert meta["wall_clock_s"] >= 0
            assert meta["host"] and meta["worker_id"]

    def test_duplicate_configs_deduped_against_cache_mid_sweep(self, tmp_path):
        config = SweepConfig("testing.sleep_echo", {"value": 7})
        backend = DistributedBackend(spawn_workers=1, quiet=True)
        runner = SweepRunner(backend=backend, artifact_dir=tmp_path)
        out = runner.run([config, SweepConfig("testing.sleep_echo", {"value": 8}), config])
        assert out == [{"value": 7}, {"value": 8}, {"value": 7}]
        # The duplicate was completed from the artifact written mid-sweep,
        # not executed a second time.
        assert backend.last_stats["cache_hits"] == 1
        assert backend.last_stats["completed"] == 2
        assert (runner.last_cached, runner.last_executed) == (1, 2)
        assert runner.last_metas[2] is None


# --------------------------------------------------------------------------- #
# Fault tolerance
# --------------------------------------------------------------------------- #
class TestFaultTolerance:
    def test_killed_worker_mid_lease_is_retried_and_table_identical(self):
        """Kill a worker holding a lease; the task must be re-leased to a
        second worker and the final table must match the serial run."""
        configs = (
            [SweepConfig("testing.sleep_echo", {"value": 0, "sleep_s": 0.05})]
            + [
                SweepConfig("testing.sleep_echo", {"value": v, "sleep_s": 1.5})
                for v in (1, 2)
            ]
            + [SweepConfig("testing.sleep_echo", {"value": 3, "sleep_s": 0.05})]
        )
        broker = Broker(_work_items(configs), lease_ttl_s=15.0, max_retries=2)
        address = broker.start()
        victim = survivor = None
        try:
            victim = spawn_loopback_worker(address, exit_when_drained=False)
            results_iter = broker.results()
            first = next(results_iter)
            # Wait until the victim holds a lease on the next (slow) task,
            # then kill it mid-execution.
            assert _wait_until(lambda: broker.stats["dispatched"] >= 2)
            victim.kill()
            victim.wait(timeout=10)
            survivor = spawn_loopback_worker(address, exit_when_drained=True)
            completed = [first] + list(results_iter)
            # Let the survivor observe the drained sweep (one more lease
            # round-trip) and exit cleanly before the broker goes away.
            survivor_exit = survivor.wait(timeout=10)
        finally:
            broker.stop()
            for process in (victim, survivor):
                if process is not None and process.poll() is None:
                    process.kill()
                    process.wait(timeout=10)
        assert broker.stats["retries"] >= 1  # the killed lease was requeued
        results = [None] * len(configs)
        for index, result, _meta in completed:
            results[index] = result
        serial = SweepRunner().run(configs)
        assert [json.loads(json.dumps(r)) for r in results] == serial
        assert survivor_exit == 0  # drained cleanly

    def test_silent_worker_lease_expires_and_task_is_redispatched(self):
        """A worker that leases a task and then hangs (connection open, no
        heartbeats) loses the lease after the TTL; a healthy worker then
        finishes the sweep."""
        configs = [SweepConfig("testing.sleep_echo", {"value": v}) for v in range(3)]
        broker = Broker(_work_items(configs), lease_ttl_s=0.5, max_retries=2)
        address = broker.start()
        zombie = socket.create_connection(address, timeout=5.0)
        worker = None
        try:
            reader = reader_for(zombie)
            send_message(
                zombie,
                {
                    "type": "hello",
                    "worker_id": "zombie",
                    "host": "test",
                    "pid": 0,
                    "procs": 1,
                    "protocol": PROTOCOL_VERSION,
                },
            )
            assert read_message(reader)["type"] == "welcome"
            send_message(zombie, {"type": "lease", "capacity": 1})
            granted = read_message(reader)
            assert granted["type"] == "tasks" and len(granted["tasks"]) == 1
            # ... and now the zombie goes silent, holding the lease open.
            assert _wait_until(lambda: broker.stats["expired_leases"] >= 1)
            # A late error from the expired lease must be dropped: the task
            # is owned by the queue (or a live worker) again, and acting on
            # the zombie report would double-queue it / burn retry budget.
            send_message(
                zombie,
                {
                    "type": "error",
                    "lease": granted["lease"],
                    "id": granted["tasks"][0]["id"],
                    "error": "zombie says boom",
                },
            )
            worker = spawn_loopback_worker(address, exit_when_drained=True)
            completed = list(broker.results())
        finally:
            broker.stop()
            zombie.close()
            if worker is not None and worker.poll() is None:
                worker.kill()
                worker.wait(timeout=10)
        assert broker.stats["retries"] >= 1
        assert broker.stats["worker_errors"] == 0  # the zombie error was dropped
        results = [None] * len(configs)
        for index, result, _meta in completed:
            results[index] = result
        assert results == [{"value": v} for v in range(3)]

    def test_heartbeats_keep_long_tasks_leased(self):
        """A task longer than the lease TTL must not expire while its worker
        is alive: heartbeats renew the lease."""
        configs = [SweepConfig("testing.sleep_echo", {"value": 9, "sleep_s": 2.0})]
        backend = DistributedBackend(
            spawn_workers=1, quiet=True, lease_ttl_s=0.8, max_retries=0
        )
        out = SweepRunner(backend=backend).run(configs)
        assert out == [{"value": 9}]
        assert backend.last_stats["expired_leases"] == 0
        assert backend.last_stats["retries"] == 0

    def test_deterministic_task_failure_exhausts_bounded_retries(self):
        backend = DistributedBackend(
            spawn_workers=1, quiet=True, max_retries=1
        )
        runner = SweepRunner(backend=backend)
        with pytest.raises(BrokerError, match=r"after 2 attempt\(s\).*kapow"):
            runner.run([SweepConfig("testing.boom", {"message": "kapow"})])
        assert backend.last_stats["worker_errors"] == 2


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestCliDistributed:
    def test_scenario_run_distributed_matches_serial(self, capsys):
        spec = "examples/scenario_benign_congest.json"
        assert main(["scenario", "run", spec]) == 0
        serial_out = capsys.readouterr().out
        assert (
            main(
                [
                    "scenario",
                    "run",
                    spec,
                    "--backend",
                    "distributed",
                    "--spawn-workers",
                    "2",
                ]
            )
            == 0
        )
        assert capsys.readouterr().out == serial_out

    def test_worker_requires_connect(self, capsys):
        with pytest.raises(SystemExit):
            main(["worker"])
