"""Tests for the random regular graph models and explicit expanders."""

import math
import random

import pytest

from repro.graphs.expanders import hypercube_graph, margulis_torus_graph
from repro.graphs.hnd import configuration_model_graph, hnd_random_regular_graph


class TestHndModel:
    def test_basic_shape(self):
        g = hnd_random_regular_graph(100, 8, seed=0)
        assert g.n == 100
        assert g.max_degree() <= 8
        # The union of 4 Hamiltonian cycles has close to 4n edges; simplification
        # removes at most a handful of parallel edges.
        assert g.num_edges() >= 4 * 100 - 20

    def test_connected(self):
        g = hnd_random_regular_graph(200, 8, seed=1)
        assert g.is_connected()

    def test_most_nodes_have_full_degree(self):
        # Simplifying the multigraph removes an O(1)-expected number of
        # parallel edges, so the vast majority of nodes keep degree exactly d.
        g = hnd_random_regular_graph(300, 8, seed=2)
        full = sum(1 for u in range(g.n) if g.degree(u) == 8)
        assert full >= 0.85 * g.n

    def test_deterministic_given_seed(self):
        a = hnd_random_regular_graph(64, 8, seed=7)
        b = hnd_random_regular_graph(64, 8, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = hnd_random_regular_graph(64, 8, seed=7)
        b = hnd_random_regular_graph(64, 8, seed=8)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_degree_2_is_hamiltonian_cycle(self):
        g = hnd_random_regular_graph(20, 2, seed=0)
        assert g.is_connected()
        assert all(g.degree(u) == 2 for u in range(g.n))
        assert g.num_edges() == 20

    def test_odd_degree_rejected(self):
        with pytest.raises(ValueError):
            hnd_random_regular_graph(10, 5)

    def test_too_small_n_rejected(self):
        with pytest.raises(ValueError):
            hnd_random_regular_graph(2, 4)

    def test_seed_and_rng_mutually_exclusive(self):
        with pytest.raises(ValueError):
            hnd_random_regular_graph(10, 4, seed=1, rng=random.Random(1))

    def test_rng_argument_used(self):
        rng = random.Random(5)
        g = hnd_random_regular_graph(30, 4, rng=rng)
        assert g.n == 30

    def test_name(self):
        assert hnd_random_regular_graph(16, 4, seed=0).name == "H(16,4)"

    def test_diameter_logarithmic(self):
        g = hnd_random_regular_graph(256, 8, seed=3)
        assert g.diameter() <= 2 * math.ceil(math.log(256, 7)) + 2


class TestConfigurationModel:
    def test_exactly_regular(self):
        g = configuration_model_graph(40, 4, seed=0)
        assert all(g.degree(u) == 4 for u in range(g.n))

    def test_simple_no_self_loops(self):
        g = configuration_model_graph(30, 3, seed=1)
        assert all(u not in g.neighbors(u) for u in range(g.n))

    def test_odd_total_degree_rejected(self):
        with pytest.raises(ValueError):
            configuration_model_graph(5, 3)

    def test_degree_at_least_n_rejected(self):
        with pytest.raises(ValueError):
            configuration_model_graph(4, 4)

    def test_deterministic_given_seed(self):
        a = configuration_model_graph(24, 4, seed=9)
        b = configuration_model_graph(24, 4, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            configuration_model_graph(1, 1)
        with pytest.raises(ValueError):
            configuration_model_graph(10, 0)


class TestHypercube:
    def test_size_and_degree(self):
        g = hypercube_graph(4)
        assert g.n == 16
        assert all(g.degree(u) == 4 for u in range(g.n))

    def test_edge_count(self):
        g = hypercube_graph(5)
        assert g.num_edges() == 5 * 32 // 2

    def test_connected(self):
        assert hypercube_graph(6).is_connected()

    def test_diameter_equals_dimension(self):
        assert hypercube_graph(4).diameter() == 4

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            hypercube_graph(0)


class TestMargulisTorus:
    def test_size(self):
        g = margulis_torus_graph(6)
        assert g.n == 36

    def test_bounded_degree(self):
        g = margulis_torus_graph(7)
        assert g.max_degree() <= 8

    def test_connected(self):
        assert margulis_torus_graph(8).is_connected()

    def test_logarithmic_diameter(self):
        g = margulis_torus_graph(10)
        assert g.diameter() <= 12

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            margulis_torus_graph(1)
