"""Tests for beacon/continue messages, the phase blacklist, and the schedule."""

import math

import pytest

from repro.core.beacon import (
    BeaconPayload,
    is_continue,
    make_beacon_message,
    make_continue_message,
    parse_beacon,
)
from repro.core.blacklist import PhaseBlacklist, split_trusted_suffix
from repro.core.congest_counting import PhaseSchedule
from repro.core.parameters import CongestParameters
from repro.simulator.messages import Message


class TestBeaconMessages:
    def test_make_beacon_counts_ids(self):
        m = make_beacon_message(origin=7, path=(1, 2, 3))
        assert m.kind == "beacon"
        assert m.num_ids == 4

    def test_beacon_is_small_message(self):
        m = make_beacon_message(origin=7, path=(1, 2, 3))
        assert m.is_small(10**6)

    def test_parse_roundtrip(self):
        m = make_beacon_message(origin=9, path=(4, 5))
        payload = parse_beacon(m)
        assert payload == BeaconPayload(origin=9, path=(4, 5))

    def test_parse_rejects_wrong_kind(self):
        assert parse_beacon(Message(kind="continue")) is None

    def test_parse_rejects_malformed_payload(self):
        assert parse_beacon(Message(kind="beacon", payload="garbage")) is None
        assert parse_beacon(
            Message(kind="beacon", payload=BeaconPayload(origin="x", path=(1,)))
        ) is None
        assert parse_beacon(
            Message(kind="beacon", payload=BeaconPayload(origin=1, path=("a",)))
        ) is None

    def test_extended_appends(self):
        payload = BeaconPayload(origin=1, path=(2,))
        assert payload.extended(3).path == (2, 3)

    def test_continue_message(self):
        m = make_continue_message()
        assert is_continue(m)
        assert m.num_ids == 0
        assert not is_continue(make_beacon_message(1))


class TestTrustedSuffix:
    def test_split_basic(self):
        far, suffix = split_trusted_suffix((1, 2, 3, 4), 2)
        assert far == (1, 2)
        assert suffix == (3, 4)

    def test_split_suffix_longer_than_path(self):
        far, suffix = split_trusted_suffix((1, 2), 5)
        assert far == ()
        assert suffix == (1, 2)

    def test_split_zero_suffix(self):
        far, suffix = split_trusted_suffix((1, 2), 0)
        assert far == (1, 2)
        assert suffix == ()


class TestPhaseBlacklist:
    def test_add_and_block(self):
        bl = PhaseBlacklist()
        added = bl.add_path((10, 20, 30, 40), suffix_length=1)
        assert added == 3
        assert 10 in bl and 40 not in bl
        assert bl.blocks_path((99, 10, 55, 66), suffix_length=1)
        assert not bl.blocks_path((77, 88, 10), suffix_length=1)  # 10 is in the suffix

    def test_reset(self):
        bl = PhaseBlacklist()
        bl.add_path((1, 2, 3), suffix_length=1)
        bl.reset()
        assert len(bl) == 0
        assert not bl.blocks_path((1, 2, 3), suffix_length=1)

    def test_add_counts_only_new(self):
        bl = PhaseBlacklist()
        bl.add_path((1, 2, 3), suffix_length=1)
        assert bl.add_path((1, 2, 9), suffix_length=1) == 0  # 1, 2 already there

    def test_short_path_fully_trusted(self):
        bl = PhaseBlacklist()
        assert bl.add_path((5,), suffix_length=1) == 0
        assert not bl.blocks_path((5,), suffix_length=1)

    def test_blocked_property(self):
        bl = PhaseBlacklist()
        bl.add_path((1, 2, 3, 4), suffix_length=2)
        assert bl.blocked == frozenset({1, 2})


class TestPhaseSchedule:
    def test_first_round_is_first_phase(self):
        params = CongestParameters(first_phase=2)
        schedule = PhaseSchedule(params)
        pos = schedule.locate(1)
        assert pos.phase == 2 and pos.iteration == 1 and pos.step == 1
        assert pos.is_iteration_start

    def test_rejects_round_zero(self):
        schedule = PhaseSchedule(CongestParameters())
        with pytest.raises(ValueError):
            schedule.locate(0)

    def test_phase_boundaries(self):
        params = CongestParameters(first_phase=2, gamma=0.5)
        schedule = PhaseSchedule(params)
        phase2_length = params.phase_length(2)
        last_of_phase2 = schedule.locate(phase2_length)
        first_of_phase3 = schedule.locate(phase2_length + 1)
        assert last_of_phase2.phase == 2
        assert last_of_phase2.step == params.rounds_per_iteration(2)
        assert first_of_phase3.phase == 3
        assert first_of_phase3.iteration == 1 and first_of_phase3.step == 1

    def test_steps_cycle_within_iterations(self):
        params = CongestParameters(first_phase=2)
        schedule = PhaseSchedule(params)
        rpi = params.rounds_per_iteration(2)
        assert schedule.locate(rpi).iteration == 1
        assert schedule.locate(rpi + 1).iteration == 2
        assert schedule.locate(rpi + 1).step == 1

    def test_consistent_with_phase_start_round(self):
        params = CongestParameters(first_phase=2)
        schedule = PhaseSchedule(params)
        for phase in (2, 3, 4, 5):
            start = schedule.phase_start_round(phase)
            assert schedule.locate(start).phase == phase
            assert schedule.locate(start).step == 1
            end = schedule.end_of_phase_round(phase)
            assert schedule.locate(end).phase == phase
            if phase > 2:
                assert schedule.locate(start - 1).phase == phase - 1

    def test_phase_start_round_rejects_early_phase(self):
        schedule = PhaseSchedule(CongestParameters(first_phase=3))
        with pytest.raises(ValueError):
            schedule.phase_start_round(2)

    def test_locate_monotone_phases(self):
        params = CongestParameters()
        schedule = PhaseSchedule(params)
        phases = [schedule.locate(r).phase for r in range(1, 400, 7)]
        assert phases == sorted(phases)

    def test_every_round_covered_exactly_once(self):
        params = CongestParameters(first_phase=2)
        schedule = PhaseSchedule(params)
        # Walk rounds 1..N and confirm (phase, iteration, step) advances without
        # gaps: step increments by 1 or wraps to 1.
        previous = schedule.locate(1)
        for r in range(2, 300):
            current = schedule.locate(r)
            if current.step != 1:
                assert current.step == previous.step + 1
                assert current.phase == previous.phase
                assert current.iteration == previous.iteration
            else:
                assert previous.step == params.rounds_per_iteration(previous.phase)
            previous = current
