"""Tests for the algorithm parameter sets (Equations (2)-(4))."""

import math

import pytest

from repro.core.parameters import CongestParameters, LocalParameters, byzantine_budget


class TestByzantineBudget:
    def test_basic(self):
        assert byzantine_budget(1000, 0.5) == 31
        assert byzantine_budget(1024, 0.3) == int(1024 ** 0.3)

    def test_zero_exponent(self):
        assert byzantine_budget(1000, 0.0) == 0

    def test_zero_size(self):
        assert byzantine_budget(0, 0.5) == 0


class TestLocalParameters:
    def test_defaults_valid(self):
        params = LocalParameters()
        assert 0 < params.gamma <= 1
        assert params.alpha_prime > 0

    def test_gamma_out_of_range(self):
        with pytest.raises(ValueError):
            LocalParameters(gamma=0.0)
        with pytest.raises(ValueError):
            LocalParameters(gamma=1.5)

    def test_bad_degree(self):
        with pytest.raises(ValueError):
            LocalParameters(max_degree=1)

    def test_bad_alpha(self):
        with pytest.raises(ValueError):
            LocalParameters(alpha_prime=0.0)

    def test_byzantine_bound(self):
        params = LocalParameters(gamma=0.5)
        assert params.byzantine_bound(1024) == 32

    def test_lower_decision_bound(self):
        params = LocalParameters(gamma=0.5, max_degree=8)
        expected = int(math.floor(0.25 * math.log(1024, 8)))
        assert params.lower_decision_bound(1024) == expected
        assert params.lower_decision_bound(1) == 0

    def test_frozen(self):
        params = LocalParameters()
        with pytest.raises(Exception):
            params.gamma = 0.9  # type: ignore[misc]


class TestCongestParameters:
    def test_defaults_valid(self):
        params = CongestParameters()
        assert params.gamma >= 0.5 - params.delta + params.eta - 1e-9

    def test_equation2_enforced(self):
        with pytest.raises(ValueError):
            CongestParameters(gamma=0.3, delta=0.1, eta=0.05)

    def test_invalid_fields(self):
        with pytest.raises(ValueError):
            CongestParameters(delta=0.0)
        with pytest.raises(ValueError):
            CongestParameters(eta=0.0)
        with pytest.raises(ValueError):
            CongestParameters(d=2)
        with pytest.raises(ValueError):
            CongestParameters(c1=0)
        with pytest.raises(ValueError):
            CongestParameters(first_phase=0)
        with pytest.raises(ValueError):
            CongestParameters(min_suffix=-1)

    def test_epsilon_equation3(self):
        params = CongestParameters(gamma=0.5, delta=0.1, d=8)
        expected = 1.0 - 0.9 * 0.5 / math.log(8)
        assert params.epsilon == pytest.approx(expected)
        # Sanity: the derived quantity satisfies d^((1-eps)i) = e^((1-delta)gamma i).
        i = 10
        assert 8 ** ((1 - params.epsilon) * i) == pytest.approx(
            math.exp((1 - params.delta) * params.gamma * i)
        )

    def test_trusted_suffix_respects_minimum(self):
        params = CongestParameters(min_suffix=1)
        assert params.trusted_suffix_length(2) >= 1

    def test_trusted_suffix_literal_when_disabled(self):
        params = CongestParameters(min_suffix=0)
        assert params.trusted_suffix_length(2) == int(
            math.floor((1 - params.epsilon) * 2)
        )

    def test_trusted_suffix_grows_with_phase(self):
        params = CongestParameters()
        assert params.trusted_suffix_length(40) >= params.trusted_suffix_length(5)

    def test_rho_equation4(self):
        params = CongestParameters(gamma=0.5, delta=0.1, d=8)
        n = 10**6
        log_d_n = math.log(n, 8)
        expected = int(math.floor(min(0.9 * 0.5 * log_d_n, log_d_n / 10))) - 2
        assert params.rho(n) == expected

    def test_rho_small_n_can_be_negative(self):
        assert CongestParameters().rho(16) <= 0

    def test_iterations_in_phase(self):
        params = CongestParameters(gamma=0.5)
        assert params.iterations_in_phase(4) == int(math.floor(math.exp(2.0))) + 1

    def test_rounds_per_iteration(self):
        assert CongestParameters().rounds_per_iteration(5) == 15

    def test_windows_sum_to_iteration_length(self):
        params = CongestParameters()
        for phase in (2, 5, 9):
            assert (
                params.beacon_window(phase) + params.continue_window(phase)
                == params.rounds_per_iteration(phase)
            )

    def test_activation_probability(self):
        params = CongestParameters(c1=4.0, d=8)
        assert params.activation_probability(3) == pytest.approx(12 / 512)
        assert params.activation_probability(3, degree=4) == pytest.approx(12 / 64)

    def test_activation_probability_capped_at_one(self):
        params = CongestParameters(c1=1000.0)
        assert params.activation_probability(2) == 1.0

    def test_phase_length_and_cumulative(self):
        params = CongestParameters(first_phase=2)
        assert params.phase_length(2) == params.iterations_in_phase(2) * 9
        assert params.rounds_through_phase(3) == params.phase_length(2) + params.phase_length(3)

    def test_expected_decision_phase_monotone_in_n(self):
        params = CongestParameters()
        assert params.expected_decision_phase(10_000) >= params.expected_decision_phase(100)

    def test_round_budget_covers_ln_n_phases(self):
        params = CongestParameters()
        n = 256
        budget = params.round_budget(n)
        assert budget >= params.rounds_through_phase(int(math.ceil(math.log(n))))

    def test_byzantine_bound(self):
        assert CongestParameters(gamma=0.5).byzantine_bound(900) == 30
