"""Tests for the persistent benchmark harness and runner execution metadata."""

import json

import pytest

from repro.cli import main
from repro.runner import SweepConfig, SweepRunner, sweep_task
from repro.runner import bench


@sweep_task("test.bench-echo")
def _echo_task(*, value):
    """Trivial task for the runner-metadata tests (fork workers inherit it)."""
    return value


TINY = (
    bench.BenchScenario("tiny-local", "bench.local", {"n": 32, "degree": 4, "seed": 0}),
    bench.BenchScenario(
        "tiny-congest",
        "bench.congest",
        {"n": 32, "degree": 4, "num_byz": 1, "behaviour": "beacon-flood", "seed": 0},
    ),
)


class TestRunnerTaskMeta:
    def test_meta_recorded_per_task_and_in_artifact(self, tmp_path):
        runner = SweepRunner(artifact_dir=tmp_path)
        configs = [SweepConfig("test.bench-echo", {"value": v}) for v in (1, 2)]
        runner.run(configs)
        assert len(runner.last_metas) == 2
        for config, meta in zip(configs, runner.last_metas):
            assert meta is not None
            assert meta["wall_clock_s"] >= 0.0
            assert isinstance(meta["worker"], int)
            document = json.loads(runner.store.path_for(config).read_text())
            assert document["meta"]["wall_clock_s"] == pytest.approx(
                meta["wall_clock_s"]
            )
            assert runner.store.load_meta(config) == document["meta"]

    def test_cache_hits_have_no_meta(self, tmp_path):
        configs = [SweepConfig("test.bench-echo", {"value": 5})]
        SweepRunner(artifact_dir=tmp_path).run(configs)
        rerun = SweepRunner(artifact_dir=tmp_path)
        rerun.run(configs)
        assert rerun.last_executed == 0
        assert rerun.last_metas == [None]

    def test_parallel_run_records_meta_for_all(self):
        runner = SweepRunner(workers=2)
        configs = [SweepConfig("test.bench-echo", {"value": v}) for v in range(4)]
        runner.run(configs)
        assert all(m is not None for m in runner.last_metas)

    def test_progress_line_on_stderr(self, capsys):
        runner = SweepRunner(workers=2, progress=True)
        configs = [SweepConfig("test.bench-echo", {"value": v}) for v in range(4)]
        runner.run(configs)
        err = capsys.readouterr().err
        assert "4/4 tasks" in err and "ETA" in err

    def test_progress_silent_by_default_without_tty(self, capsys):
        runner = SweepRunner(workers=2)
        configs = [SweepConfig("test.bench-echo", {"value": v}) for v in range(3)]
        runner.run(configs)
        assert "ETA" not in capsys.readouterr().err


class TestRunBench:
    def test_report_shape_and_determinism(self):
        report = bench.run_bench(TINY, repeats=2)
        assert report["schema"] == bench.BENCH_SCHEMA_VERSION
        assert report["repeats"] == 2
        names = [row["name"] for row in report["scenarios"]]
        assert names == ["tiny-local", "tiny-congest"]
        for row in report["scenarios"]:
            assert row["wall_clock_s"] > 0
            assert len(row["wall_clock_all"]) == 2
            assert row["wall_clock_s"] == min(row["wall_clock_all"])
            assert set(row["result"]) >= {"rounds", "messages", "bits"}
            assert row["result"]["messages"] > 0

    def test_write_find_and_load_roundtrip(self, tmp_path):
        report = bench.run_bench(TINY[:1], repeats=1)
        older = bench.write_report(report, tmp_path, filename="BENCH_2000-01-01.json")
        newer = bench.write_report(report, tmp_path, filename="BENCH_2000-01-02.json")
        assert bench.load_report(newer)["scenarios"][0]["name"] == "tiny-local"
        assert bench.find_previous_report(tmp_path) == newer
        assert bench.find_previous_report(tmp_path, exclude=newer) == older
        assert bench.find_previous_report(tmp_path, exclude=None) == newer

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            bench.run_bench(TINY[:1], repeats=0)


def _report(rows):
    return {"schema": 1, "scenarios": rows}


def _row(name, wall, result=None):
    return {
        "name": name,
        "task": "t",
        "params": {},
        "wall_clock_s": wall,
        "wall_clock_all": [wall],
        "result": result if result is not None else {"rounds": 5, "messages": 10},
    }


class TestCompareReports:
    def test_statuses(self):
        previous = _report([_row("a", 1.0), _row("b", 1.0), _row("c", 1.0)])
        current = _report(
            [_row("a", 1.05), _row("b", 1.5), _row("c", 0.5), _row("d", 2.0)]
        )
        rows = bench.compare_reports(current, previous, threshold=0.10)
        by_name = {r["scenario"]: r["status"] for r in rows}
        assert by_name == {"a": "ok", "b": "regression", "c": "faster", "d": "new"}
        assert bench.comparison_failed(rows)

    def test_result_drift_is_a_failure(self):
        previous = _report([_row("a", 1.0, result={"rounds": 5, "messages": 10})])
        current = _report([_row("a", 1.0, result={"rounds": 6, "messages": 10})])
        rows = bench.compare_reports(current, previous)
        assert rows[0]["status"] == "result-drift"
        assert bench.comparison_failed(rows)

    def test_clean_comparison_passes(self):
        previous = _report([_row("a", 1.0)])
        current = _report([_row("a", 0.95)])
        rows = bench.compare_reports(current, previous)
        assert rows[0]["status"] == "ok"
        assert not bench.comparison_failed(rows)
        assert "ok" in bench.render_comparison(rows)


class TestBenchCli:
    @pytest.fixture(autouse=True)
    def tiny_scenarios(self, monkeypatch):
        monkeypatch.setattr(bench, "SCENARIOS", TINY)
        monkeypatch.setattr(bench, "SMOKE_SCENARIOS", TINY[:1])

    def test_bench_writes_file_and_prints_table(self, tmp_path, capsys):
        code = main(
            ["bench", "--repeats", "1", "--output-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tiny-local" in out and "wrote" in out
        written = list(tmp_path.glob("BENCH_*.json"))
        assert len(written) == 1
        document = json.loads(written[0].read_text())
        assert document["schema"] == bench.BENCH_SCHEMA_VERSION

    def test_bench_compare_ok_and_regression_exit_codes(self, tmp_path, capsys):
        # Seed a slow "previous" trajectory entry, then compare: current run
        # is faster -> exit 0.
        report = bench.run_bench(TINY, repeats=1)
        for row in report["scenarios"]:
            row["wall_clock_s"] = row["wall_clock_s"] * 100
        bench.write_report(report, tmp_path, filename="BENCH_2000-01-01.json")
        code = main(
            [
                "bench",
                "--repeats",
                "1",
                "--output-dir",
                str(tmp_path),
                "--no-write",
                "--compare",
            ]
        )
        assert code == 0
        assert "faster" in capsys.readouterr().out

        # Now seed an absurdly fast previous entry -> regression -> exit 1.
        for row in report["scenarios"]:
            row["wall_clock_s"] = 1e-9
        bench.write_report(report, tmp_path, filename="BENCH_2000-01-02.json")
        code = main(
            [
                "bench",
                "--repeats",
                "1",
                "--output-dir",
                str(tmp_path),
                "--no-write",
                "--compare",
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_same_day_rerun_compares_before_overwriting(self, tmp_path, capsys):
        # A same-day re-run overwrites BENCH_<today>.json; the baseline must
        # be read for comparison *before* the overwrite, or the regression
        # gate silently skips.
        code = main(["bench", "--repeats", "1", "--output-dir", str(tmp_path)])
        assert code == 0
        capsys.readouterr()
        todays = list(tmp_path.glob("BENCH_*.json"))
        assert len(todays) == 1
        document = json.loads(todays[0].read_text())
        for row in document["scenarios"]:
            row["wall_clock_s"] = 1e-9  # simulate a much faster baseline
        todays[0].write_text(json.dumps(document))
        code = main(
            ["bench", "--repeats", "1", "--output-dir", str(tmp_path), "--compare"]
        )
        out = capsys.readouterr().out
        assert code == 1, out
        assert "regression" in out

    def test_bench_compare_without_previous_is_ok(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--scenarios",
                "smoke",
                "--repeats",
                "1",
                "--output-dir",
                str(tmp_path),
                "--no-write",
                "--compare",
            ]
        )
        assert code == 0
        assert "no previous" in capsys.readouterr().out

    def test_output_name_overrides_dated_filename(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--repeats",
                "1",
                "--output-dir",
                str(tmp_path),
                "--output-name",
                "BENCH_2026-07-28b.json",
            ]
        )
        assert code == 0
        assert (tmp_path / "BENCH_2026-07-28b.json").exists()
        assert "BENCH_2026-07-28b.json" in capsys.readouterr().out

    def test_profile_writes_top25_report(self, tmp_path, capsys):
        profile_path = tmp_path / "profile_report.txt"
        code = main(
            [
                "bench",
                "--scenarios",
                "smoke",
                "--repeats",
                "1",
                "--no-write",
                "--profile",
                str(profile_path),
            ]
        )
        assert code == 0
        text = profile_path.read_text()
        assert "cumulative" in text
        assert "wrote profile report" in capsys.readouterr().out
