"""Tests for decision records and counting outcomes (Definition 2 machinery)."""

import math

import pytest

from repro.core.estimate import CountingOutcome, DecisionRecord, approximation_band


def _outcome(n, estimates, *, eval_set=None, rounds=10):
    records = {}
    for node, est in estimates.items():
        records[node] = DecisionRecord(
            node=node,
            decided=est is not None,
            estimate=est,
            decision_round=rounds if est is not None else None,
        )
    return CountingOutcome(
        n=n,
        records=records,
        evaluation_set=set(eval_set) if eval_set is not None else set(),
        rounds_executed=rounds,
        total_messages=100,
        total_bits=1000,
    )


class TestApproximationBand:
    def test_band_values(self):
        low, high = approximation_band(math.e ** 4, lower_factor=0.5, upper_factor=2.0)
        assert low == pytest.approx(2.0)
        assert high == pytest.approx(8.0)

    def test_small_n_clamped(self):
        low, high = approximation_band(1, lower_factor=1.0, upper_factor=1.0)
        assert low == high == pytest.approx(math.log(2))


class TestDecisionRecord:
    def test_within(self):
        rec = DecisionRecord(node=0, decided=True, estimate=5.0, decision_round=3)
        assert rec.within(4.0, 6.0)
        assert not rec.within(5.5, 6.0)

    def test_within_undecided_false(self):
        rec = DecisionRecord(node=0, decided=False, estimate=None, decision_round=None)
        assert not rec.within(0.0, 100.0)


class TestCountingOutcome:
    def test_decided_fraction(self):
        outcome = _outcome(100, {0: 4.0, 1: None, 2: 5.0, 3: 4.5})
        assert outcome.decided_fraction() == pytest.approx(0.75)

    def test_evaluation_set_defaults_to_all(self):
        outcome = _outcome(100, {0: 4.0, 1: 5.0})
        assert outcome.evaluation_set == {0, 1}

    def test_evaluation_set_intersected_with_records(self):
        outcome = _outcome(100, {0: 4.0, 1: 5.0}, eval_set={1, 99})
        assert outcome.evaluation_set == {1}

    def test_estimates_and_median(self):
        outcome = _outcome(100, {0: 3.0, 1: 5.0, 2: 4.0})
        assert sorted(outcome.estimates()) == [3.0, 4.0, 5.0]
        assert outcome.median_estimate() == 4.0

    def test_estimate_range(self):
        outcome = _outcome(100, {0: 3.0, 1: 7.0})
        assert outcome.estimate_range() == (3.0, 7.0)

    def test_estimate_range_empty(self):
        outcome = _outcome(100, {0: None})
        assert outcome.estimate_range() == (None, None)

    def test_fraction_within_band(self):
        n = int(math.e ** 5)  # ln n ~ 5
        outcome = _outcome(n, {0: 5.0, 1: 1.0, 2: 5.5, 3: None})
        frac = outcome.fraction_within_band(0.5, 1.5)
        assert frac == pytest.approx(0.5)

    def test_approximation_ratios(self):
        n = int(round(math.e ** 4))
        outcome = _outcome(n, {0: 4.0})
        assert outcome.approximation_ratios()[0] == pytest.approx(4.0 / math.log(n), rel=1e-3)

    def test_max_decision_round(self):
        outcome = _outcome(100, {0: 4.0, 1: 5.0}, rounds=17)
        assert outcome.max_decision_round() == 17

    def test_estimate_histogram(self):
        outcome = _outcome(100, {0: 4.0, 1: 4.0, 2: 5.0})
        assert outcome.estimate_histogram() == {4.0: 2, 5.0: 1}

    def test_satisfies_definition2_true(self):
        n = int(math.e ** 5)
        outcome = _outcome(n, {0: 5.0, 1: 4.5, 2: 5.5})
        assert outcome.satisfies_definition2(
            lower_factor=0.5, upper_factor=1.5, min_fraction=0.9
        )

    def test_satisfies_definition2_fails_if_undecided(self):
        outcome = _outcome(100, {0: 4.0, 1: None})
        assert not outcome.satisfies_definition2(
            lower_factor=0.0, upper_factor=10.0, min_fraction=0.1
        )

    def test_summary_keys(self):
        outcome = _outcome(64, {0: 4.0})
        summary = outcome.summary()
        for key in ("n", "log_n", "decided_fraction", "median_estimate", "rounds_executed"):
            assert key in summary

    def test_over_all_honest_vs_eval(self):
        outcome = _outcome(100, {0: 4.0, 1: None}, eval_set={0})
        assert outcome.decided_fraction() == 1.0
        assert outcome.decided_fraction(over_evaluation_set=False) == 0.5
