"""Tests of the synchronous engine: delivery, sender stamping, adversary hooks,
stop conditions, and the full-information model guarantees."""

from typing import Dict, List

import pytest

from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.simulator.byzantine import Adversary, AdversaryView, SilentAdversary
from repro.simulator.engine import SynchronousEngine
from repro.simulator.messages import Message
from repro.simulator.network import Network
from repro.simulator.node import NodeContext, Outbox, Protocol


class EchoProtocol(Protocol):
    """Broadcasts a counter every round; records everything it receives."""

    def __init__(self, ctx: NodeContext, rounds_to_run: int = 3) -> None:
        self.rounds_to_run = rounds_to_run
        self.received: List[Message] = []
        self.round_log: List[int] = []
        self._decided = False

    @property
    def decided(self) -> bool:
        return self._decided

    @property
    def estimate(self):
        return 1.0 if self._decided else None

    def on_start(self, ctx: NodeContext) -> Outbox:
        msg = Message.make("echo", ("hello", ctx.node_id))
        return {v: [msg.clone()] for v in ctx.neighbors}

    def on_round(self, ctx: NodeContext, inbox) -> Outbox:
        self.received.extend(inbox)
        self.round_log.append(ctx.round)
        if ctx.round >= self.rounds_to_run:
            self._decided = True
            return {}
        msg = Message.make("echo", ctx.round)
        return {v: [msg.clone()] for v in ctx.neighbors}


class MisbehavedProtocol(EchoProtocol):
    """Tries to send to a non-neighbor (the engine must drop it)."""

    def on_start(self, ctx: NodeContext) -> Outbox:
        msg = Message.make("echo", 0)
        bogus_target = max(ctx.neighbors) + 1000
        return {bogus_target: [msg], ctx.neighbors[0]: [msg.clone()]}


class BroadcastThenHaltProtocol(EchoProtocol):
    """Broadcasts a final message in the very round its ``halted`` flips."""

    def on_round(self, ctx: NodeContext, inbox) -> Outbox:
        self.received.extend(inbox)
        self.round_log.append(ctx.round)
        if ctx.round >= self.rounds_to_run:
            self._decided = True
            msg = Message.make("echo", "last-words")
            return {v: [msg.clone()] for v in ctx.neighbors}
        msg = Message.make("echo", ctx.round)
        return {v: [msg.clone()] for v in ctx.neighbors}


class RecordingAdversary(Adversary):
    """Sends a tagged message from every Byzantine node and records its view."""

    def __init__(self):
        self.views: List[AdversaryView] = []

    def act(self, view: AdversaryView):
        self.views.append(view)
        out = {}
        for b in view.byzantine:
            msg = Message.make("byz", view.round)
            out[b] = {v: [msg.clone()] for v in view.byzantine_neighbors(b)}
        return out


class OutOfGraphAdversary(Adversary):
    """Tries to send from a non-Byzantine node and to a non-neighbor."""

    def act(self, view: AdversaryView):
        some_byz = next(iter(view.byzantine))
        honest = [u for u in range(view.graph.n) if u not in view.byzantine][0]
        msg = Message.make("byz", 1)
        return {
            honest: {0: [msg.clone()]},  # not Byzantine -> must be dropped
            some_byz: {10_000: [msg.clone()]},  # not a neighbor -> must be dropped
        }


def _run(graph, byzantine=frozenset(), adversary=None, rounds_to_run=3, **kwargs):
    network = Network(graph=graph, byzantine=frozenset(byzantine))
    engine = SynchronousEngine(
        network,
        lambda ctx: EchoProtocol(ctx, rounds_to_run),
        adversary=adversary,
        seed=1,
        max_rounds=kwargs.pop("max_rounds", 50),
        **kwargs,
    )
    return engine, engine.run()


class TestDelivery:
    def test_messages_delivered_next_round(self):
        graph = path_graph(3)
        _, result = _run(graph)
        middle = result.protocols[1]
        # Round-0 messages from both neighbors arrive in round 1.
        first_round_messages = [m for m in middle.received if m.payload == ("hello", graph.node_id(0)) or m.payload == ("hello", graph.node_id(2))]
        assert len(first_round_messages) == 2

    def test_sender_stamped_with_true_identity(self):
        graph = path_graph(2)
        _, result = _run(graph)
        received = result.protocols[0].received
        assert all(m.sender == 1 for m in received)
        assert all(m.sender_id == graph.node_id(1) for m in received)

    def test_no_delivery_between_non_neighbors(self):
        graph = path_graph(3)
        _, result = _run(graph)
        endpoint = result.protocols[0]
        assert all(m.sender == 1 for m in endpoint.received)

    def test_invalid_targets_dropped(self):
        graph = path_graph(3)
        network = Network(graph=graph)
        engine = SynchronousEngine(network, lambda ctx: MisbehavedProtocol(ctx), seed=0, max_rounds=5)
        result = engine.run()
        # Nothing crashed and only legitimate neighbors got messages.
        assert result.metrics.total_messages > 0

    def test_metrics_count_messages(self):
        graph = cycle_graph(4)
        _, result = _run(graph, rounds_to_run=2)
        # Round 0: 4 nodes x 2 neighbors = 8 messages; round 1: same; round 2: none.
        assert result.metrics.total_messages == 16


class TestTermination:
    def test_stops_when_all_halted(self):
        graph = cycle_graph(5)
        _, result = _run(graph, rounds_to_run=2)
        assert result.completed
        assert all(p.decided for p in result.protocols.values())

    def test_max_rounds_cap(self):
        graph = cycle_graph(5)
        _, result = _run(graph, rounds_to_run=10_000, max_rounds=7)
        assert result.rounds_executed <= 8
        assert not result.completed

    def test_custom_stop_condition(self):
        graph = cycle_graph(5)
        network = Network(graph=graph)
        engine = SynchronousEngine(
            network,
            lambda ctx: EchoProtocol(ctx, rounds_to_run=100),
            seed=0,
            max_rounds=50,
            stop_condition=lambda protocols, r: r >= 4,
        )
        result = engine.run()
        assert result.completed
        assert result.rounds_executed <= 6

    def test_halted_nodes_not_scheduled(self):
        graph = cycle_graph(4)
        _, result = _run(graph, rounds_to_run=2)
        for protocol in result.protocols.values():
            # on_round is never called again after the protocol halts.
            assert max(protocol.round_log) <= 3

    def test_decision_rounds_recorded(self):
        graph = cycle_graph(4)
        _, result = _run(graph, rounds_to_run=2)
        assert set(result.metrics.decision_rounds) == set(range(4))

    def test_stop_round_argument_on_early_stop_path(self):
        # Regression: the stop condition always receives the last *executed*
        # round, on the break path as on the budget-exhaustion path.
        seen = []

        def stop(protocols, round_number):
            seen.append(round_number)
            return round_number >= 3

        graph = cycle_graph(4)
        network = Network(graph=graph)
        engine = SynchronousEngine(
            network,
            lambda ctx: EchoProtocol(ctx, rounds_to_run=100),
            seed=0,
            max_rounds=50,
            stop_condition=stop,
        )
        result = engine.run()
        assert result.completed
        # Called before rounds 1..4 with the previous round's number each time.
        assert seen == [0, 1, 2, 3]
        # Rounds 0..3 executed (round 0 is on_start).
        assert result.rounds_executed == 4

    def test_stop_round_argument_on_budget_exhaustion_path(self):
        seen = []

        def stop(protocols, round_number):
            seen.append(round_number)
            return False

        graph = cycle_graph(4)
        network = Network(graph=graph)
        engine = SynchronousEngine(
            network,
            lambda ctx: EchoProtocol(ctx, rounds_to_run=100),
            seed=0,
            max_rounds=5,
            stop_condition=stop,
        )
        result = engine.run()
        assert not result.completed
        # Five pre-round checks (rounds 1..5) plus the final post-loop check,
        # which must see the last executed round (5), not a stale value.
        assert seen == [0, 1, 2, 3, 4, 5]
        assert result.rounds_executed == 6  # rounds 0..5

    def test_zero_round_budget_evaluates_stop_for_round_zero(self):
        seen = []

        def stop(protocols, round_number):
            seen.append(round_number)
            return True

        graph = cycle_graph(4)
        network = Network(graph=graph)
        engine = SynchronousEngine(
            network,
            lambda ctx: EchoProtocol(ctx, rounds_to_run=100),
            seed=0,
            stop_condition=stop,
        )
        result = engine.run(max_rounds=0)
        # Only round 0 (on_start) ran; the single stop evaluation sees it.
        assert seen == [0]
        assert result.completed
        assert result.rounds_executed == 1


class TestAdversaryIntegration:
    def test_byzantine_nodes_have_no_protocol(self):
        graph = cycle_graph(6)
        _, result = _run(graph, byzantine={0}, adversary=SilentAdversary())
        assert 0 not in result.protocols
        assert len(result.protocols) == 5

    def test_adversary_messages_delivered_with_true_sender(self):
        graph = cycle_graph(6)
        adversary = RecordingAdversary()
        _, result = _run(graph, byzantine={0}, adversary=adversary)
        neighbor = result.protocols[1]
        byz_messages = [m for m in neighbor.received if m.kind == "byz"]
        assert byz_messages
        assert all(m.sender == 0 for m in byz_messages)

    def test_adversary_sees_honest_outboxes_before_acting(self):
        graph = cycle_graph(6)
        adversary = RecordingAdversary()
        _run(graph, byzantine={0}, adversary=adversary)
        view = adversary.views[0]
        assert view.round == 0
        # Full information: honest round-0 outboxes are visible.
        assert any(view.honest_outboxes[u] for u in view.honest_outboxes)
        assert set(view.honest_outboxes) == set(range(1, 6))

    def test_adversary_sees_honest_protocol_state(self):
        graph = cycle_graph(6)
        adversary = RecordingAdversary()
        _run(graph, byzantine={2}, adversary=adversary)
        view = adversary.views[-1]
        assert all(isinstance(p, EchoProtocol) for p in view.honest_protocols.values())

    def test_adversary_cannot_send_from_honest_nodes(self):
        graph = cycle_graph(6)
        _, result = _run(graph, byzantine={0}, adversary=OutOfGraphAdversary())
        # No message with kind 'byz' should have arrived from an honest sender,
        # and no crash from the bogus target.
        for protocol in result.protocols.values():
            for m in protocol.received:
                if m.kind == "byz":
                    assert m.sender == 0

    def test_halted_node_outbox_resets_in_adversary_view(self):
        # A node may broadcast in the same round its halted property flips;
        # the adversary must see that final outbox in the halting round and
        # an empty outbox (not a stale replay) in every later round.
        graph = cycle_graph(4)
        network = Network(graph=graph, byzantine=frozenset({0}))
        adversary = RecordingAdversary()
        engine = SynchronousEngine(
            network,
            lambda ctx: BroadcastThenHaltProtocol(ctx, rounds_to_run=2),
            adversary=adversary,
            seed=0,
            max_rounds=10,
            stop_condition=lambda protocols, r: r >= 4,
        )
        engine.run()
        by_round = {view.round: view for view in adversary.views}
        assert any(by_round[2].honest_outboxes.values())
        for round_number in (3, 4):
            assert all(
                not outbox
                for outbox in by_round[round_number].honest_outboxes.values()
            )

    def test_no_adversary_call_without_byzantine_nodes(self):
        graph = cycle_graph(4)
        adversary = RecordingAdversary()
        _run(graph, byzantine=set(), adversary=adversary)
        assert adversary.views == []

    def test_adversary_view_helpers(self):
        graph = star_graph(5)
        adversary = RecordingAdversary()
        _run(graph, byzantine={0}, adversary=adversary)
        view = adversary.views[0]
        assert set(view.byzantine_neighbors(0)) == {1, 2, 3, 4}
        assert set(view.honest_neighbors_of(0)) == {1, 2, 3, 4}
