"""Tests for ball/boundary/induced-subgraph utilities (Section 3 notation)."""

import pytest

from repro.graphs.generators import cycle_graph, path_graph, star_graph
from repro.graphs.neighborhoods import (
    ball,
    ball_of_set,
    boundary,
    distances_from,
    induced_subgraph,
    layers,
)


class TestDistances:
    def test_distances_path(self):
        g = path_graph(5)
        dist = distances_from(g, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_max_distance_truncates(self):
        g = path_graph(10)
        dist = distances_from(g, 0, max_distance=3)
        assert max(dist.values()) == 3
        assert len(dist) == 4

    def test_allowed_restricts_traversal(self):
        g = cycle_graph(8)
        dist = distances_from(g, 0, allowed={0, 1, 2})
        assert set(dist) == {0, 1, 2}
        assert dist[2] == 2  # can't take the short way around through 7

    def test_allowed_must_contain_source(self):
        g = cycle_graph(6)
        with pytest.raises(ValueError):
            distances_from(g, 0, allowed={1, 2})


class TestBalls:
    def test_ball_radius_zero(self):
        g = cycle_graph(6)
        assert ball(g, 0, 0) == {0}

    def test_ball_radius_one_inclusive(self):
        g = cycle_graph(6)
        assert ball(g, 0, 1) == {5, 0, 1}

    def test_ball_covers_graph(self):
        g = cycle_graph(7)
        assert ball(g, 0, 10) == set(range(7))

    def test_ball_negative_radius(self):
        with pytest.raises(ValueError):
            ball(cycle_graph(5), 0, -1)

    def test_ball_of_set_union(self):
        g = path_graph(10)
        result = ball_of_set(g, [0, 9], 1)
        assert result == {0, 1, 8, 9}

    def test_ball_monotone_in_radius(self):
        g = cycle_graph(12)
        assert ball(g, 3, 1) <= ball(g, 3, 2) <= ball(g, 3, 3)


class TestBoundary:
    def test_boundary_exact_distance(self):
        g = path_graph(6)
        assert boundary(g, 0, 2) == {2}

    def test_boundary_star(self):
        g = star_graph(6)
        assert boundary(g, 0, 1) == {1, 2, 3, 4, 5}
        assert boundary(g, 1, 2) == {2, 3, 4, 5}

    def test_boundary_beyond_graph_is_empty(self):
        g = cycle_graph(6)
        assert boundary(g, 0, 10) == set()

    def test_layers_partition_ball(self):
        g = cycle_graph(9)
        ls = layers(g, 0, 3)
        assert ls[0] == {0}
        union = set().union(*ls)
        assert union == ball(g, 0, 3)
        # Layers are pairwise disjoint.
        assert sum(len(layer) for layer in ls) == len(union)


class TestInducedSubgraph:
    def test_induced_keeps_internal_edges_only(self):
        g = cycle_graph(6)
        sub, index = induced_subgraph(g, [0, 1, 2])
        assert sub.n == 3
        assert sub.num_edges() == 2
        assert set(index) == {0, 1, 2}

    def test_induced_preserves_node_ids(self):
        g = cycle_graph(5)
        sub, index = induced_subgraph(g, [1, 3])
        assert sub.node_id(index[1] if index[1] < 2 else 0) in g.node_ids

    def test_induced_with_duplicates(self):
        g = cycle_graph(5)
        sub, _ = induced_subgraph(g, [0, 0, 1])
        assert sub.n == 2
