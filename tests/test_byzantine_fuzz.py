"""Fuzz-style regression tests: malformed Byzantine topology payloads.

Algorithm 1's honest nodes must never raise on adversarial input; structurally
malformed information ends in a decision via the ``inconsistent`` path
(Lines 5-7 of the pseudocode), not in an exception.
"""

import random

import pytest

from repro.core.local_counting import LocalCountingProtocol, LocalView, run_local_counting
from repro.core.parameters import LocalParameters
from repro.graphs.hnd import hnd_random_regular_graph
from repro.simulator.byzantine import Adversary
from repro.simulator.messages import Message
from repro.simulator.node import NodeContext


class TestIntegrateFuzz:
    """LocalView.integrate flags malformed reports instead of absorbing them."""

    def _view(self):
        return LocalView(100, [101, 102])

    def test_non_int_node_id_flagged(self):
        bad, new_edges, new_vertices = self._view().integrate(
            [("evil", (1, 2))], [], max_degree=4
        )
        assert bad and new_edges == [] and new_vertices == []

    def test_non_int_edge_ids_flagged(self):
        bad, new_edges, _ = self._view().integrate(
            [(101, ("a", "b"))], [], max_degree=4
        )
        assert bad and new_edges == []

    def test_nested_tuple_ids_flagged(self):
        bad, new_edges, _ = self._view().integrate(
            [((1, 2), (3,)), (103, ((4, 5), 6))], [], max_degree=4
        )
        assert bad and new_edges == []

    def test_non_int_reported_vertices_flagged(self):
        bad, _, new_vertices = self._view().integrate(
            [], ["ghost", (1,), None], max_degree=4
        )
        assert bad and new_vertices == []

    def test_oversized_edge_set_flagged(self):
        bad, _, _ = self._view().integrate(
            [(103, tuple(range(200, 300)))], [], max_degree=8
        )
        assert bad

    def test_self_loop_flagged(self):
        bad, _, _ = self._view().integrate([(103, (103, 104))], [], max_degree=4)
        assert bad

    def test_float_ids_equal_to_settled_edge_set_flagged(self):
        # frozenset({1.0, 2.0}) == frozenset({1, 2}), so the duplicate-claim
        # fast path must still type-check elements: numeric non-int ids are
        # malformed Byzantine data even when they compare equal to the
        # settled ints.
        view = self._view()
        view.integrate([(3, (1, 2))], [], max_degree=4)
        bad, new_edges, new_vertices = view.integrate(
            [(3, (1.0, 2.0))], [], max_degree=4
        )
        assert bad and new_edges == [] and new_vertices == []

    def test_malformed_reports_do_not_contaminate_view(self):
        view = self._view()
        view.integrate([("evil", (1, 2)), (103, ("x",))], ["ghost"], max_degree=4)
        assert "evil" not in view.vertices and "ghost" not in view.vertices
        assert all(isinstance(v, int) for v in view.vertices)
        assert all(isinstance(v, int) for v in view.adjacency())


def _protocol_and_ctx(max_degree=4):
    ctx = NodeContext(
        index=0,
        node_id=100,
        neighbors=(1, 2),
        neighbor_ids={1: 101, 2: 102},
        rng=random.Random(0),
        round=0,
    )
    protocol = LocalCountingProtocol(ctx, LocalParameters(max_degree=max_degree))
    protocol.on_start(ctx)
    return protocol, ctx


def _topology(payload, sender):
    return Message(kind="topology", payload=payload, sender=sender, sender_id=sender + 100)


#: Malformed "topology" payloads; every neighbor speaks, so the decision can
#: only come from the ``inconsistent`` path.
MALFORMED_PAYLOADS = [
    pytest.param(None, id="none-payload"),
    pytest.param(42, id="int-payload"),
    pytest.param("garbage", id="string-payload"),
    pytest.param((1, 2, 3), id="wrong-arity"),
    pytest.param(([], []), id="lists-not-tuples"),
    pytest.param((((1,),), ()), id="edge-entry-not-a-pair"),
    pytest.param((((1, 2, 3),), ()), id="edge-entry-triple"),
    pytest.param((((1, 7),), ()), id="edge-ids-not-iterable"),
    pytest.param(((([1], (2,)),), ()), id="unhashable-node-id"),
    pytest.param((((1, ([2], 3)),), ()), id="unhashable-edge-ids"),
    pytest.param(((("evil", (1, 2)),), ()), id="non-int-ids"),
    pytest.param((((3, tuple(range(50))),), ()), id="oversized-edge-set"),
    pytest.param((((3, (3, 4)),), ()), id="self-loop"),
    pytest.param(((), ("ghost",)), id="non-int-frontier-vertex"),
]


class TestProtocolFuzz:
    """A node fed garbage from its neighbors decides instead of raising."""

    @pytest.mark.parametrize("payload", MALFORMED_PAYLOADS)
    def test_malformed_payload_decides_via_inconsistent(self, payload):
        protocol, ctx = _protocol_and_ctx()
        ctx.round = 1
        inbox = [_topology(payload, 1), _topology(((), ()), 2)]
        outbox = protocol.on_round(ctx, inbox)
        assert protocol.decided, f"payload {payload!r} did not trigger a decision"
        assert protocol.estimate == 1.0  # decided in round 1, the garbage round
        assert outbox == {}

    def test_well_formed_empty_delta_does_not_decide_in_round_one(self):
        # Control: both neighbors send well-formed (empty) deltas; the node
        # must keep running rather than treat them as inconsistent.
        protocol, ctx = _protocol_and_ctx()
        ctx.round = 1
        inbox = [_topology(((), ()), 1), _topology(((), ()), 2)]
        protocol.on_round(ctx, inbox)
        assert not protocol.decided


class _GarbageTopologyAdversary(Adversary):
    """Sends a different malformed topology payload every round."""

    _PAYLOADS = [
        None,
        "junk",
        (1, 2, 3),
        ((("evil", (1, 2)),), ()),
        (((1, ([2], 3)),), ()),
        ((), ("ghost", ("nested",))),
    ]

    def act(self, view):
        payload = self._PAYLOADS[view.round % len(self._PAYLOADS)]
        out = {}
        for b in view.byzantine:
            message = Message(kind="topology", payload=payload, size_bits=8, num_ids=0)
            out[b] = self.broadcast_from(view, b, message)
        return out


class TestEndToEndFuzz:
    def test_garbage_adversary_never_crashes_and_all_decide(self):
        graph = hnd_random_regular_graph(64, 8, seed=7)
        run = run_local_counting(
            graph,
            byzantine={0, 13},
            adversary=_GarbageTopologyAdversary(),
            params=LocalParameters(max_degree=8),
            seed=3,
        )
        assert run.outcome.decided_fraction() == 1.0
        # Neighbors of the garbage senders decide immediately (round 1).
        for v in set(graph.neighbors(0)) - {13}:
            assert run.outcome.records[v].estimate == 1.0
