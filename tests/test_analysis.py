"""Tests for the theorem checks, complexity fits, and table rendering."""

import math

import pytest

from repro.analysis.accuracy import corollary1_check, theorem1_check, theorem2_check
from repro.analysis.complexity import fit_blog2_model, fit_log_model
from repro.analysis.tables import render_series, render_table
from repro.core.estimate import CountingOutcome, DecisionRecord


def _outcome(n, estimates, *, rounds=5, small_fraction=1.0):
    records = {
        node: DecisionRecord(
            node=node, decided=est is not None, estimate=est,
            decision_round=rounds if est is not None else None,
        )
        for node, est in estimates.items()
    }
    return CountingOutcome(
        n=n, records=records, rounds_executed=rounds, total_messages=1,
        total_bits=1, small_message_fraction=small_fraction,
    )


class TestTheoremChecks:
    def test_theorem1_pass(self):
        n = 1024
        good = {i: math.log(n) * 0.8 for i in range(10)}
        report = theorem1_check(_outcome(n, good))
        assert report.passed
        assert report.fraction_in_band == 1.0

    def test_theorem1_fails_on_undecided(self):
        n = 1024
        estimates = {0: math.log(n), 1: None}
        assert not theorem1_check(_outcome(n, estimates)).passed

    def test_theorem1_fails_on_too_many_rounds(self):
        n = 64
        estimates = {0: math.log(n)}
        report = theorem1_check(_outcome(n, estimates, rounds=1000))
        assert not report.passed

    def test_theorem1_fails_out_of_band(self):
        n = 1024
        estimates = {i: 0.01 for i in range(10)}
        assert not theorem1_check(_outcome(n, estimates)).passed

    def test_theorem2_pass(self):
        n = 1024
        estimates = {i: math.log(n) for i in range(20)}
        report = theorem2_check(_outcome(n, estimates), beta=0.1, round_budget=100)
        assert report.passed

    def test_theorem2_beta_tolerates_minority_failures(self):
        n = 1024
        estimates = {i: math.log(n) for i in range(18)}
        estimates[18] = 0.01
        estimates[19] = 0.01
        report = theorem2_check(_outcome(n, estimates), beta=0.15)
        assert report.passed
        assert not theorem2_check(_outcome(n, estimates), beta=0.05).passed

    def test_theorem2_small_message_requirement(self):
        n = 256
        estimates = {i: math.log(n) for i in range(5)}
        report = theorem2_check(
            _outcome(n, estimates, small_fraction=0.2), beta=0.1
        )
        assert not report.passed

    def test_corollary1_upper_bound_enforced(self):
        n = 64
        ok = {i: float(math.ceil(math.log(n))) for i in range(5)}
        assert corollary1_check(_outcome(n, ok)).passed
        too_big = {i: math.ceil(math.log(n)) + 5.0 for i in range(5)}
        assert not corollary1_check(_outcome(n, too_big)).passed

    def test_report_summary_keys(self):
        n = 128
        report = theorem1_check(_outcome(n, {0: math.log(n)}))
        summary = report.summary()
        assert summary["check"] == "theorem1"
        assert "fraction_in_band" in summary


class TestComplexityFits:
    def test_log_fit_recovers_coefficients(self):
        sizes = [64, 128, 256, 512, 1024]
        rounds = [3.0 * math.log(n) + 2.0 for n in sizes]
        fit = fit_log_model(sizes, rounds)
        assert fit.coefficient == pytest.approx(3.0, abs=1e-6)
        assert fit.intercept == pytest.approx(2.0, abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_blog2_fit_recovers_coefficients(self):
        sizes = [64, 128, 256, 256, 512]
        byz = [1, 2, 3, 5, 4]
        rounds = [0.5 * (b + 1) * math.log(n) ** 2 + 7 for n, b in zip(sizes, byz)]
        fit = fit_blog2_model(sizes, byz, rounds)
        assert fit.coefficient == pytest.approx(0.5, abs=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_fit_handles_single_point(self):
        fit = fit_log_model([100], [5.0])
        assert fit.r_squared == 1.0
        assert fit.intercept == 5.0

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_log_model([], [])

    def test_fit_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_blog2_model([1, 2], [1], [3.0, 4.0])

    def test_noisy_fit_r_squared_below_one(self):
        sizes = [64, 128, 256, 512]
        rounds = [10, 11, 30, 12]
        fit = fit_log_model(sizes, rounds)
        assert fit.r_squared < 0.9

    def test_summary(self):
        fit = fit_log_model([10, 100], [1.0, 2.0])
        assert set(fit.summary()) == {"model", "coefficient", "intercept", "r_squared"}


class TestTables:
    def test_render_table_basic(self):
        text = render_table([{"a": 1, "b": 2.5}, {"a": 10, "b": None}], title="t")
        assert "t" in text
        assert "a" in text and "b" in text
        assert "2.500" in text
        assert "-" in text  # None rendered as dash

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([])

    def test_render_table_column_selection(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_render_table_bool(self):
        text = render_table([{"ok": True}, {"ok": False}])
        assert "yes" in text and "no" in text

    def test_render_series(self):
        text = render_series([1, 2], [3.0, 4.0], x_label="n", y_label="rounds")
        assert "rounds" in text
        assert "4.000" in text
