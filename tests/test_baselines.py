"""Tests for the non-Byzantine-resilient baselines (Section 1.2 motivation)."""

import math

import pytest

from repro.adversary.strategies import ValueFakingAdversary
from repro.baselines import (
    BaselineOutcome,
    run_flooding_baseline,
    run_geometric_baseline,
    run_spanning_tree_baseline,
    run_support_estimation_baseline,
)
from repro.baselines.common import parse_value, value_payload
from repro.graphs.hnd import hnd_random_regular_graph
from repro.simulator.messages import Message


@pytest.fixture(scope="module")
def graph():
    return hnd_random_regular_graph(128, 8, seed=23)


class TestCommonHelpers:
    def test_value_payload_roundtrip(self):
        m = value_payload("tag", 3.5)
        assert parse_value(m, "tag") == 3.5

    def test_parse_value_wrong_tag(self):
        m = value_payload("tag", 3.5)
        assert parse_value(m, "other") is None

    def test_parse_value_bare_float_accepted(self):
        m = Message(kind="estimate", payload=7.0)
        assert parse_value(m, "anything") == 7.0

    def test_parse_value_wrong_kind(self):
        assert parse_value(Message(kind="beacon", payload=1.0), "tag") is None

    def test_outcome_statistics(self):
        outcome = BaselineOutcome(
            name="x", n=100, estimates={0: math.log(100), 1: None, 2: 50.0},
            rounds_executed=5, total_messages=10,
        )
        assert outcome.decided_fraction() == pytest.approx(2 / 3)
        assert outcome.median_relative_error() is not None
        assert 0 < outcome.fraction_within_factor(0.9, 1.1) < 1
        assert set(outcome.summary()) >= {"baseline", "n", "median_estimate"}


class TestBenignAccuracy:
    def test_geometric_close_to_log_n(self, graph):
        # The max of n geometric samples is log2(n) + a heavy-tailed O(1)
        # fluctuation, so a single benign run is only a constant-factor
        # estimate -- which is all the paper claims for it.
        outcome = run_geometric_baseline(graph, seed=1)
        assert outcome.decided_fraction() == 1.0
        assert 0.5 * math.log(graph.n) <= outcome.median_estimate() <= 3.0 * math.log(graph.n)

    def test_support_estimation_accurate(self, graph):
        outcome = run_support_estimation_baseline(graph, seed=1)
        assert outcome.decided_fraction() == 1.0
        assert outcome.median_relative_error() < 0.3

    def test_spanning_tree_exact(self, graph):
        outcome = run_spanning_tree_baseline(graph, seed=1)
        assert outcome.decided_fraction() == 1.0
        assert outcome.median_estimate() == pytest.approx(math.log(graph.n), abs=1e-6)

    def test_flooding_diameter_logarithmic(self, graph):
        outcome = run_flooding_baseline(graph, seed=1)
        assert outcome.decided_fraction() == 1.0
        assert 2 <= outcome.median_estimate() <= 2 * math.log(graph.n)

    def test_all_nodes_agree_on_spanning_tree_count(self, graph):
        outcome = run_spanning_tree_baseline(graph, seed=2)
        values = {round(v, 6) for v in outcome.estimates.values() if v is not None}
        assert len(values) == 1


class TestSingleByzantineBreaksBaselines:
    def test_geometric_inflated(self, graph):
        attacked = run_geometric_baseline(
            graph, byzantine={0}, adversary=ValueFakingAdversary(), seed=1
        )
        assert attacked.median_relative_error() > 10

    def test_support_estimation_destroyed_by_deflation(self, graph):
        attacked = run_support_estimation_baseline(
            graph, byzantine={0}, adversary=ValueFakingAdversary(mode="deflate"), seed=1
        )
        # Minima forced to zero make the estimate infinite (no finite answer).
        assert attacked.decided_fraction() < 0.1

    def test_spanning_tree_inflated(self, graph):
        clean = run_spanning_tree_baseline(graph, seed=1)
        attacked = run_spanning_tree_baseline(
            graph, byzantine={0}, adversary=ValueFakingAdversary(), seed=1
        )
        assert attacked.median_estimate() > clean.median_estimate() + 1.0

    def test_flooding_inflated(self, graph):
        attacked = run_flooding_baseline(
            graph, byzantine={0}, adversary=ValueFakingAdversary(), seed=1
        )
        assert attacked.median_relative_error() > 10

    def test_byzantine_node_not_in_estimates(self, graph):
        attacked = run_geometric_baseline(
            graph, byzantine={5}, adversary=ValueFakingAdversary(), seed=1
        )
        assert 5 not in attacked.estimates
