"""Tests for hub high availability (hub journal, re-adoption, self-healing
clients, admission control, supervision).

The flagship scenario (``TestHubSigkillRestart``) runs the hub as a
subprocess and SIGKILLs it mid-sweep while two tenant clients stream
results, then restarts it on the same port with the same ``--state``
directory: both clients must self-heal (reconnect + identity re-attach)
and finish with tables byte-identical to serial, and no task that already
has an artifact behind it may execute twice.

The hub runs as a *subprocess* here on purpose: an in-process hub sharing
the pytest process with a fork-context worker pool would leak its
listening socket into the forked children, keeping the port alive past
the crash -- a test-harness artifact real deployments (separate
processes) never see.

Unit-level coverage (journal round-trips, re-attach replay, admission
busy replies, heartbeats, crash-hub injection, supervisor signals) runs
in-process for speed.
"""

import contextlib
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro.runner.testing  # noqa: F401  (registers testing.* sweep tasks)
from repro.cli import main
from repro.runner import (
    ArtifactStore,
    Backoff,
    BrokerError,
    DistributedBackend,
    FaultInjector,
    FaultPlan,
    SweepConfig,
    SweepHub,
    SweepRunner,
)
from repro.runner.distributed.backend import spawn_loopback_worker
from repro.runner.distributed.protocol import (
    PROTOCOL_VERSION,
    read_message,
    reader_for,
    send_message,
)
from repro.runner.faults import CRASH_EXIT_CODE
from repro.runner.hub import HubJournal, HubSupervisor
from repro.runner.hub.client import HubSubmission, submit_to_hub

#: tests/test_hub_ha.py -> repository root (for subprocess cwd).
ROOT = Path(__file__).resolve().parents[1]


def _items(values, *, sleep_s=0.0, start=0):
    """Hub work items (index, task, params, module) for ``testing.sleep_echo``."""
    params = lambda v: (  # noqa: E731
        {"value": v, "sleep_s": sleep_s} if sleep_s else {"value": v}
    )
    return [
        (start + offset, "testing.sleep_echo", params(value), "repro.runner.testing")
        for offset, value in enumerate(values)
    ]


def _configs(values):
    return [SweepConfig("testing.sleep_echo", {"value": v}) for v in values]


@contextlib.contextmanager
def running_hub(root=None, **kwargs):
    store = ArtifactStore(root) if root is not None else None
    hub = SweepHub(store=store, **kwargs)
    address = hub.start()
    try:
        yield hub, address
    finally:
        if not hub.crashed.is_set():
            hub.stop()


@contextlib.contextmanager
def running_subprocess_worker(address, *, procs=1):
    """A persistent loopback worker subprocess attached to ``address``."""
    process = spawn_loopback_worker(address, procs=procs, exit_when_drained=False)
    try:
        yield process
    finally:
        if process.poll() is None:
            process.terminate()
            try:
                process.wait(timeout=15.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10.0)


def _raw_submit(address, items, *, name=""):
    """Open a raw client connection and perform the submit handshake.

    Returns ``(sock, reader, ack)``; the caller owns the socket.
    """
    sock = socket.create_connection(address, timeout=10.0)
    sock.settimeout(10.0)
    send_message(
        sock,
        {
            "type": "submit",
            "protocol": PROTOCOL_VERSION,
            "name": name,
            "priority": 0,
            "force": False,
            "tasks": [
                {"id": index, "task": task, "params": params, "module": module}
                for index, task, params, module in items
            ],
        },
    )
    reader = reader_for(sock)
    return sock, reader, read_message(reader)


# --------------------------------------------------------------------------- #
# HubJournal: crash-safe state round-trips
# --------------------------------------------------------------------------- #
class TestHubJournal:
    def test_record_mark_and_readoption_roundtrip(self, tmp_path):
        journal = HubJournal(tmp_path)
        items = _items(range(3))
        journal.record("abc123", items, name="t", priority=2)
        journal.mark_done("abc123", 0)
        journal.mark_done("abc123", 1, cached=True)

        # A fresh journal (a restarted hub) sees the interrupted sweep.
        (doc,) = HubJournal(tmp_path).incomplete()
        assert doc["identity"] == "abc123"
        assert doc["name"] == "t"
        assert doc["priority"] == 2
        assert doc["done"] == [0, 1]
        assert doc["cached"] == [1]
        assert doc["total"] == 3
        assert [t["index"] for t in doc["tasks"]] == [0, 1, 2]

        # Completion removes it from the re-adoption set; the file stays.
        journal.mark_done("abc123", 2)
        journal.mark_complete("abc123")
        assert HubJournal(tmp_path).incomplete() == []
        assert journal.path_for("abc123").exists()

    def test_failed_sweeps_are_not_readopted(self, tmp_path):
        journal = HubJournal(tmp_path)
        journal.record("dead", _items(range(2)))
        journal.mark_failed("dead", "retries exhausted")
        assert HubJournal(tmp_path).incomplete() == []
        document = json.loads(
            journal.path_for("dead").read_text(encoding="utf-8")
        )
        assert document["error"] == "retries exhausted"

    def test_adoption_resets_done_and_counts_restarts(self, tmp_path):
        journal = HubJournal(tmp_path)
        journal.record("x", _items(range(2)))
        journal.mark_done("x", 0)
        journal.record("x", _items(range(2)), adopted=True)
        (doc,) = journal.incomplete()
        assert doc["done"] == []  # re-verified against the store, not trusted
        assert doc["adopted"] == 1
        journal.record("x", _items(range(2)), adopted=True)
        (doc,) = journal.incomplete()
        assert doc["adopted"] == 2

    def test_unknown_identity_marks_are_ignored(self, tmp_path):
        journal = HubJournal(tmp_path)
        journal.mark_done("ghost", 0)
        journal.mark_complete("ghost")
        journal.mark_failed("ghost", "boom")
        assert list(tmp_path.iterdir()) == []

    def test_unreadable_state_file_is_skipped_with_warning(self, tmp_path, capsys):
        journal = HubJournal(tmp_path)
        journal.record("ok", _items(range(1)))
        (tmp_path / "hub-garbage.state.json").write_text("{not json", "utf-8")
        (doc,) = journal.incomplete()
        assert doc["identity"] == "ok"
        assert "skipping unreadable state file" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# Identity dedupe and stream re-attach
# --------------------------------------------------------------------------- #
class TestIdentityReattach:
    def test_resubmitted_identity_replays_without_reexecution(self, tmp_path):
        with running_hub(tmp_path) as (hub, address):
            with running_subprocess_worker(address):
                first = submit_to_hub(address, _items(range(4)))
                assert len(list(first)) == 4
                # Identical task list: the hub re-attaches to the finished
                # queue and replays its history; nothing executes again.
                second = submit_to_hub(address, _items(range(4)))
                completed = list(second)
            assert second.reattached is True
            assert first.reattached is False
            assert hub.stats["reattached"] == 1
            assert hub.stats["completed"] == 4  # no second execution
        results = [None] * 4
        for index, result, _meta in completed:
            results[index] = result
        assert results == [{"value": v} for v in range(4)]

    def test_accepted_carries_identity_and_heartbeat(self, tmp_path):
        with running_hub(tmp_path, client_heartbeat_s=0.5) as (_hub, address):
            sock, _reader, ack = _raw_submit(address, _items(range(2)))
            sock.close()
        assert ack["type"] == "accepted"
        assert re.fullmatch(r"[0-9a-f]{16}", ack["identity"])
        assert ack["reattached"] is False
        assert ack["heartbeat_s"] == 0.5


# --------------------------------------------------------------------------- #
# Admission control
# --------------------------------------------------------------------------- #
class TestAdmissionControl:
    def test_busy_reply_past_capacity_and_reattach_bypass(self, tmp_path):
        # No workers: submitted tasks stay pending and hold the capacity.
        with running_hub(tmp_path, max_pending=4) as (hub, address):
            first_sock, _reader, ack = _raw_submit(address, _items(range(3)))
            assert ack["type"] == "accepted"
            # 3 pending + 3 more would exceed 4: structured busy reply.
            busy_sock, _reader2, busy = _raw_submit(
                address, _items(range(10, 13))
            )
            assert busy["type"] == "busy"
            assert busy["retry_after_s"] == pytest.approx(1.0)
            assert "capacity" in busy["error"]
            assert hub.stats["rejected_busy"] == 1
            # Re-attaching the existing identity adds no tasks: admitted.
            re_sock, _reader3, re_ack = _raw_submit(address, _items(range(3)))
            assert re_ack["type"] == "accepted"
            assert re_ack["reattached"] is True
            for open_sock in (first_sock, busy_sock, re_sock):
                open_sock.close()

    def test_client_backs_off_and_retries_on_busy(self, tmp_path):
        # One slot of capacity, occupied; a client submission must retry
        # (honouring retry_after_s) and fail only once its budget is spent.
        with running_hub(
            tmp_path, max_pending=2, admission_retry_s=0.05
        ) as (_hub, address):
            holder_sock, _reader, ack = _raw_submit(address, _items(range(2)))
            assert ack["type"] == "accepted"
            submission = HubSubmission(
                address,
                _items(range(10, 12)),
                reconnect_attempts=2,
                backoff=Backoff(base_s=0.05, cap_s=0.1, jitter=0.0, seed=7),
                quiet=True,
            )
            with pytest.raises(BrokerError, match="unavailable"):
                list(submission)
            assert submission.reconnects == 2
            holder_sock.close()

    def test_max_pending_validation(self):
        with pytest.raises(ValueError, match="max_pending"):
            SweepHub(max_pending=0)


# --------------------------------------------------------------------------- #
# Stream liveness: heartbeats while the sweep is slow
# --------------------------------------------------------------------------- #
class TestStreamLiveness:
    def test_heartbeats_flow_while_results_are_pending(self, tmp_path):
        with running_hub(tmp_path, client_heartbeat_s=0.1) as (_hub, address):
            sock, reader, ack = _raw_submit(
                address, _items(range(1), sleep_s=0.8)
            )
            assert ack["type"] == "accepted"
            with running_subprocess_worker(address):
                kinds = []
                while True:
                    message = read_message(reader)
                    kinds.append(message["type"])
                    if message["type"] in ("sweep-done", "sweep-failed"):
                        break
            sock.close()
        assert kinds[-1] == "sweep-done"
        assert "result" in kinds
        # The 0.8s task must have produced idle heartbeats first.
        assert kinds.count("hub-heartbeat") >= 2
        assert kinds.index("hub-heartbeat") < kinds.index("result")


# --------------------------------------------------------------------------- #
# Chaos sites: crash-hub / hang-hub
# --------------------------------------------------------------------------- #
class TestHubChaosSites:
    def test_crash_hub_site_kills_hub_abruptly(self, tmp_path):
        plan = FaultPlan(crash_hub=1.0, seed=3)
        with running_hub(
            tmp_path, injector=FaultInjector(plan, salt="hub")
        ) as (hub, address):
            with running_subprocess_worker(address):
                submission = submit_to_hub(
                    address, _items(range(3)), reconnect_attempts=0, quiet=True
                )
                with pytest.raises(BrokerError, match="unavailable"):
                    list(submission)
            assert hub.crashed.is_set()
            assert hub.fault_counts.get("crash-hub", 0) == 1

    def test_hang_hub_site_delays_but_heartbeat_budget_absorbs_it(self, tmp_path):
        # Hangs shorter than the client's read timeout (4 heartbeat
        # intervals) cost latency only: no reconnect, full results.
        plan = FaultPlan(hang_hub=1.0, hang_s=0.2, seed=11)
        with running_hub(
            tmp_path, injector=FaultInjector(plan, salt="hub")
        ) as (hub, address):
            with running_subprocess_worker(address):
                submission = submit_to_hub(address, _items(range(2)), quiet=True)
                completed = list(submission)
            assert hub.fault_counts.get("hang-hub", 0) >= 2
        assert sorted(index for index, _r, _m in completed) == [0, 1]
        assert submission.reconnects == 0

    def test_stalled_stream_triggers_reconnect_and_reattach(self, tmp_path):
        # A hub that stalls past the read timeout without closing the
        # socket: the client must detect the dead air, reconnect, and
        # re-attach -- the replayed stream finishes the sweep.
        with running_hub(tmp_path, client_heartbeat_s=0.1) as (hub, address):
            original = SweepHub._send_result
            state = {"hung": False}

            def hanging_send(conn, sweep, item):
                if not state["hung"]:
                    state["hung"] = True
                    time.sleep(1.0)  # > 4 * client_heartbeat_s
                return original(hub, conn, sweep, item)

            hub._send_result = hanging_send
            with running_subprocess_worker(address):
                submission = HubSubmission(
                    address,
                    _items(range(3)),
                    reconnect_attempts=8,
                    backoff=Backoff(base_s=0.05, cap_s=0.2, jitter=0.0, seed=5),
                    quiet=True,
                )
                completed = list(submission)
        assert sorted(index for index, _r, _m in completed) == [0, 1, 2]
        assert submission.reconnects >= 1
        assert submission.reattached is True


# --------------------------------------------------------------------------- #
# Supervision: scale signals and the autoscale pool plan
# --------------------------------------------------------------------------- #
class TestHubSupervisor:
    def test_signal_only_poll_reports_scale_up_and_down(self, tmp_path):
        with running_hub(tmp_path) as (hub, _address):
            supervisor = HubSupervisor(hub)
            tick = supervisor.poll()
            assert tick == {
                "backlog": 0,
                "fleet": 0,
                "own_workers": 0,
                "desired": None,
                "action": None,
            }
            hub.submit(_items(range(9)), name="load")
            tick = supervisor.poll()
            assert tick["backlog"] == 9
            assert tick["action"] == "scale-up"
            assert tick["desired"] is None  # signal-only mode
            events = [e for e in hub.events if e["event"] == "autoscale"]
            assert len(events) == 1 and events[0]["action"] == "scale-up"
            # Transition-gated: a steady backlog emits no second event.
            supervisor.poll()
            events = [e for e in hub.events if e["event"] == "autoscale"]
            assert len(events) == 1

    def test_autoscale_pool_plan_is_clamped(self, tmp_path):
        with running_hub(tmp_path) as (hub, _address):
            supervisor = HubSupervisor(
                hub, autoscale=(1, 3), depth_per_worker=2
            )
            # Reconcile would spawn real processes; test the plan only.
            assert supervisor._desired(0) == 1  # floor holds a warm worker
            assert supervisor._desired(3) == 2
            assert supervisor._desired(50) == 3  # ceiling
        with pytest.raises(ValueError, match="autoscale"):
            HubSupervisor(hub, autoscale=(3, 1))

    def test_autoscale_spawns_and_retires_loopback_workers(self, tmp_path):
        with running_hub(tmp_path) as (hub, _address):
            supervisor = HubSupervisor(
                hub, autoscale=(0, 2), depth_per_worker=2, interval_s=0.2
            )
            supervisor.start()
            try:
                submission = hub.submit(_items(range(4), sleep_s=0.05))
                results = list(submission.results())
                assert len(results) == 4
                deadline = time.monotonic() + 20.0
                while time.monotonic() < deadline:
                    if supervisor.stats["spawned"] >= 1 and not supervisor._pool:
                        break
                    time.sleep(0.1)
            finally:
                supervisor.stop()
            assert supervisor.stats["spawned"] >= 1
            assert supervisor.stats["retired"] == supervisor.stats["spawned"]
            assert supervisor._pool == []


# --------------------------------------------------------------------------- #
# The flagship: SIGKILL the hub mid-sweep, restart, clients self-heal
# --------------------------------------------------------------------------- #
def _start_hub_process(artifact_dir, state_dir, *, port=0):
    """``hub serve --state`` subprocess; returns (process, (host, port))."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "hub",
            "serve",
            "--listen",
            f"127.0.0.1:{port}",
            "--artifact-dir",
            str(artifact_dir),
            "--state",
            str(state_dir),
            "--lease-ttl",
            "5",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        cwd=str(ROOT),
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
    )
    assert process.stdout is not None
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = process.stdout.readline().decode("utf-8", "replace")
        if not line:
            break
        match = re.search(r"\[hub\] listening on ([\d.]+):(\d+)", line)
        if match:
            return process, (match.group(1), int(match.group(2)))
    process.kill()
    raise RuntimeError("hub subprocess never announced its address")


class TestHubSigkillRestart:
    def test_two_tenants_survive_hub_sigkill_with_state_readoption(
        self, tmp_path
    ):
        values_a, values_b = list(range(0, 6)), list(range(20, 26))
        serial_a = SweepRunner().run(_configs(values_a))
        serial_b = SweepRunner().run(_configs(values_b))
        root = tmp_path / "artifacts"
        state = tmp_path / "state"

        rows, errors, backends = {}, {}, {}

        def run_tenant(key, values, address):
            backend = DistributedBackend(connect=address, quiet=True)
            backends[key] = backend
            runner = SweepRunner(backend=backend, artifact_dir=root)
            configs = [
                SweepConfig(
                    "testing.sleep_echo", {"value": v, "sleep_s": 0.25}
                )
                for v in values
            ]
            try:
                rows[key] = runner.run(configs)
            except Exception as exc:  # noqa: BLE001 - reported by the test
                errors[key] = exc

        hub = new_hub = None
        workers = []
        try:
            hub, address = _start_hub_process(root, state)
            workers = [
                spawn_loopback_worker(address, exit_when_drained=False)
                for _ in range(2)
            ]
            threads = [
                threading.Thread(target=run_tenant, args=("a", values_a, address)),
                threading.Thread(target=run_tenant, args=("b", values_b, address)),
            ]
            for thread in threads:
                thread.start()

            # Wait for real progress, then SIGKILL the hub mid-sweep.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if len(list(root.glob("testing.sleep_echo/*.json"))) >= 3:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("no artifacts appeared before the kill window")
            pre_kill = {
                path: path.stat().st_mtime_ns
                for path in root.glob("testing.sleep_echo/*.json")
            }
            hub.send_signal(signal.SIGKILL)
            hub.wait(timeout=10.0)

            # Restart on the same port with the same state directory: the
            # journal re-adopts both sweeps, the store prefill skips every
            # task with an artifact behind it, the workers reconnect, and
            # the clients re-attach by identity.
            new_hub, _ = _start_hub_process(root, state, port=address[1])
            for thread in threads:
                thread.join(timeout=120.0)
                assert not thread.is_alive(), "tenant wedged after hub restart"
        finally:
            for process in workers:
                if process.poll() is None:
                    process.kill()
            for process in workers:
                process.wait(timeout=10.0)
            for process in (hub, new_hub):
                if process is not None and process.poll() is None:
                    process.kill()
                    process.wait(timeout=10.0)

        assert errors == {}
        # Byte-identical to serial for both tenants.
        assert [json.loads(json.dumps(r)) for r in rows["a"]] == serial_a
        assert [json.loads(json.dumps(r)) for r in rows["b"]] == serial_b
        # At least one client actually rode out the crash...
        assert sum(b.last_stats.get("reconnects", 0) for b in backends.values()) >= 1
        # ...and nothing with an artifact behind it executed twice: the
        # pre-kill artifacts are untouched after the restart.
        for path, mtime_ns in pre_kill.items():
            assert path.stat().st_mtime_ns == mtime_ns, (
                f"{path.name} was rewritten after the restart "
                "(task re-executed despite its artifact)"
            )
        # The adopted sweeps completed in the hub journal.
        state_docs = [
            json.loads(path.read_text(encoding="utf-8"))
            for path in sorted(state.glob("hub-*.state.json"))
        ]
        assert len(state_docs) == 2
        assert all(doc["complete"] for doc in state_docs)
        assert all(doc["adopted"] >= 1 for doc in state_docs)


# --------------------------------------------------------------------------- #
# CLI plumbing for the HA layer
# --------------------------------------------------------------------------- #
class TestHaCli:
    def test_autoscale_spec_parsing(self):
        from repro.cli import _parse_autoscale

        assert _parse_autoscale("0:4") == (0, 4)
        for bad in ("4", "2:1", "-1:3", "a:b"):
            with pytest.raises(SystemExit):
                _parse_autoscale(bad)

    def test_reconnect_attempts_requires_connect(self):
        spec = "examples/scenario_benign_congest.json"
        with pytest.raises(SystemExit, match="--reconnect-attempts"):
            main(["scenario", "run", spec, "--reconnect-attempts", "3"])

    def test_sweeps_cli_surfaces_skipped_files(self, tmp_path, capsys):
        SweepRunner(artifact_dir=tmp_path).run(_configs(range(2)))
        (tmp_path / "sweep-bad.journal.json").write_text("{oops", "utf-8")
        assert main(["sweeps", "--artifact-dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "1 unreadable file(s) skipped" in captured.out
        assert "skipping unreadable file" in captured.err
        assert main(["runs", "list", "--artifact-dir", str(tmp_path)]) == 0
        assert "1 unreadable file(s) skipped" in capsys.readouterr().out

    def test_crash_exit_code_is_distinct(self):
        assert CRASH_EXIT_CODE == 70
