"""Regression locks for the incremental-hot-path refactor.

``tests/golden/*.txt`` were rendered by the pre-refactor implementation
(PR 1); the refactored engine/protocol stack must reproduce them *byte for
byte* -- the optimization contract is "same tables, less time".  Also locks
the incremental delta-message size accounting against the documented
``estimate_payload_bits`` recursion and the geometric phase-schedule
extension against a brute-force reference.
"""

import random
from pathlib import Path

from repro.core.congest_counting import PhaseSchedule
from repro.core.local_counting import LocalCountingProtocol
from repro.core.parameters import CongestParameters, LocalParameters
from repro.experiments import (
    e2_congest_theorem2,
    e3_benign,
    e9_adversary_grid,
    e12_scaling,
)
from repro.simulator.messages import estimate_payload_bits
from repro.simulator.node import NodeContext

GOLDEN = Path(__file__).parent / "golden"


class TestGoldenTables:
    """Byte-identical table regressions.

    The E2/E12 goldens were rendered by the PR 1 implementation, the E3/E9
    goldens by the PR 2 implementation (before the drivers were re-expressed
    as declarative scenarios); every later refactor must reproduce all four
    byte for byte.
    """

    def test_e2_table_byte_identical(self):
        result = e2_congest_theorem2.run_experiment(sizes=(64, 128), trials=1, seed=0)
        assert result.render() + "\n" == (GOLDEN / "e2_small_table.txt").read_text()

    def test_e3_table_byte_identical(self):
        result = e3_benign.run_experiment(sizes=(64, 128), trials=1, seed=0)
        assert result.render() + "\n" == (GOLDEN / "e3_small_table.txt").read_text()

    def test_e9_table_byte_identical(self):
        result = e9_adversary_grid.run_experiment(
            n=64, placements=("random",), congest_byzantine=2
        )
        assert result.render() + "\n" == (GOLDEN / "e9_small_table.txt").read_text()

    def test_e12_table_byte_identical(self):
        result = e12_scaling.run_experiment(
            local_sizes=(64, 128), congest_sizes=(64,), congest_byzantine_counts=(1, 2), seed=0
        )
        assert result.render() + "\n" == (GOLDEN / "e12_small_table.txt").read_text()


class TestDeltaSizeAccounting:
    """The accumulated size_bits equals estimate_payload_bits over the payload."""

    def _protocol(self, neighbors=(101, 102, 103)):
        ctx = NodeContext(
            index=0,
            node_id=100,
            neighbors=tuple(range(1, len(neighbors) + 1)),
            neighbor_ids=dict(enumerate(neighbors, start=1)),
            rng=random.Random(0),
            round=0,
        )
        return LocalCountingProtocol(ctx, LocalParameters(max_degree=8))

    def test_initial_delta_matches_documented_accounting(self):
        protocol = self._protocol()
        message = protocol._delta_message()
        assert message.size_bits == estimate_payload_bits(message.payload)
        edges, vertices = message.payload
        assert message.num_ids == sum(1 + len(e) for _, e in edges) + len(vertices)

    def test_random_deltas_match_documented_accounting(self):
        rng = random.Random(7)
        for _ in range(30):
            protocol = self._protocol()
            protocol._delta_message()  # drain the initial delta
            for _ in range(rng.randrange(1, 4)):
                entries = [
                    (
                        rng.randrange(0, 1 << rng.randrange(1, 40)),
                        tuple(
                            sorted(
                                rng.randrange(0, 1 << rng.randrange(1, 40))
                                for _ in range(rng.randrange(0, 5))
                            )
                        ),
                    )
                    for _ in range(rng.randrange(0, 4))
                ]
                vertices = [
                    rng.randrange(0, 1 << rng.randrange(1, 40))
                    for _ in range(rng.randrange(0, 5))
                ]
                protocol._queue_delta(entries, vertices)
            message = protocol._delta_message()
            assert message.size_bits == estimate_payload_bits(message.payload)
            edges, vertices = message.payload
            assert message.num_ids == sum(1 + len(e) for _, e in edges) + len(vertices)

    def test_zero_valued_ids_cost_one_bit(self):
        protocol = self._protocol()
        protocol._delta_message()
        protocol._queue_delta([(0, (0,))], [0])
        message = protocol._delta_message()
        assert message.size_bits == estimate_payload_bits(message.payload)


class TestGeometricSchedule:
    """The geometrically extending schedule equals the brute-force reference."""

    @staticmethod
    def _reference_positions(params, max_round):
        positions = {}
        round_number = 1
        phase = params.first_phase
        while round_number <= max_round:
            rpi = params.rounds_per_iteration(phase)
            for iteration in range(1, params.iterations_in_phase(phase) + 1):
                for step in range(1, rpi + 1):
                    positions[round_number] = (phase, iteration, step)
                    round_number += 1
            phase += 1
        return positions

    def test_locate_matches_reference_sequentially(self):
        params = CongestParameters()
        schedule = PhaseSchedule(params)
        reference = self._reference_positions(params, 600)
        for r in range(1, 601):
            position = schedule.locate(r)
            assert (position.phase, position.iteration, position.step) == reference[r]

    def test_locate_matches_reference_random_access(self):
        params = CongestParameters()
        schedule = PhaseSchedule(params)
        reference = self._reference_positions(params, 2000)
        rng = random.Random(3)
        rounds = [rng.randrange(1, 2001) for _ in range(200)]
        for r in rounds:
            position = schedule.locate(r)
            assert (position.phase, position.iteration, position.step) == reference[r]

    def test_phase_start_round_consistent_with_locate(self):
        params = CongestParameters()
        schedule = PhaseSchedule(params)
        for phase in range(params.first_phase, params.first_phase + 8):
            start = schedule.phase_start_round(phase)
            position = schedule.locate(start)
            assert (position.phase, position.iteration, position.step) == (phase, 1, 1)
            end = schedule.end_of_phase_round(phase)
            last = schedule.locate(end)
            assert last.phase == phase
            assert last.step == params.rounds_per_iteration(phase)

    def test_extension_is_geometric(self):
        params = CongestParameters()
        schedule = PhaseSchedule(params)
        schedule.locate(1)
        covered_after_first = schedule._phase_end(schedule._phase_starts[-1])
        schedule.locate(covered_after_first + 1)
        covered_after_second = schedule._phase_end(schedule._phase_starts[-1])
        # One lookup past the horizon at least doubles the covered rounds.
        assert covered_after_second >= 2 * covered_after_first
