"""Tests for Algorithm 2 (randomized small-message counting)."""

import math
from collections import Counter

import pytest

from repro.adversary.placement import spread_placement
from repro.adversary.strategies import (
    BeaconFloodAdversary,
    ContinueFloodAdversary,
    PathTamperAdversary,
)
from repro.core.congest_counting import run_congest_counting
from repro.core.parameters import CongestParameters
from repro.graphs.hnd import hnd_random_regular_graph
from repro.graphs.neighborhoods import ball_of_set


class TestBenignRuns:
    def test_all_nodes_decide(self, benign_congest_run):
        assert benign_congest_run.outcome.decided_fraction() == 1.0

    def test_estimates_upper_bounded_by_ceil_ln_n(self, small_hnd, benign_congest_run):
        _, high = benign_congest_run.outcome.estimate_range()
        assert high <= math.ceil(math.log(small_hnd.n)) + 1

    def test_estimates_lower_bounded(self, small_hnd, benign_congest_run):
        low, _ = benign_congest_run.outcome.estimate_range()
        assert low >= benign_congest_run.params.first_phase

    def test_most_nodes_agree_on_modal_value(self, benign_congest_run):
        histogram = Counter(benign_congest_run.outcome.estimates())
        _, modal_count = histogram.most_common(1)[0]
        assert modal_count >= 0.75 * len(benign_congest_run.outcome.records)

    def test_only_small_messages(self, benign_congest_run):
        assert benign_congest_run.outcome.small_message_fraction == 1.0

    def test_quiescence_in_benign_case(self, benign_congest_run_quiescent):
        metrics = benign_congest_run_quiescent.result.metrics
        assert metrics.messages_per_round[-1] == 0
        assert benign_congest_run_quiescent.outcome.decided_fraction() == 1.0

    def test_reproducible_given_seed(self, small_hnd, congest_params):
        a = run_congest_counting(small_hnd, params=congest_params, seed=12)
        b = run_congest_counting(small_hnd, params=congest_params, seed=12)
        assert a.outcome.estimates() == b.outcome.estimates()

    def test_estimates_grow_with_n(self, congest_params):
        medians = []
        for n in (64, 512):
            graph = hnd_random_regular_graph(n, 8, seed=13)
            run = run_congest_counting(graph, params=congest_params, seed=13)
            medians.append(run.outcome.median_estimate())
        assert medians[1] > medians[0]

    def test_rounds_within_budget(self, small_hnd, congest_params, benign_congest_run):
        budget = congest_params.round_budget(small_hnd.n)
        assert benign_congest_run.outcome.rounds_executed <= budget


class TestByzantineRuns:
    @pytest.fixture(scope="class")
    def attack_setup(self):
        params = CongestParameters(d=8)
        graph = hnd_random_regular_graph(128, 8, seed=41)
        byzantine = spread_placement(graph, 3, seed=41)
        budget = params.rounds_through_phase(int(math.ceil(math.log(graph.n))) + 1)
        return params, graph, byzantine, budget

    def _far_nodes(self, graph, byzantine, outcome):
        contaminated = ball_of_set(graph, byzantine, 1)
        return [u for u in outcome.records if u not in contaminated]

    def test_beacon_flood_far_nodes_decide_in_band(self, attack_setup):
        params, graph, byz, budget = attack_setup
        run = run_congest_counting(
            graph, byzantine=byz, adversary=BeaconFloodAdversary(params),
            params=params, seed=1, max_rounds=budget,
        )
        outcome = run.outcome
        log_n = math.log(graph.n)
        far = self._far_nodes(graph, byz, outcome)
        in_band = [
            u for u in far if outcome.records[u].within(0.35 * log_n, 1.6 * log_n)
        ]
        assert len(in_band) >= 0.9 * len(far)

    def test_beacon_flood_does_not_cause_unbounded_overshoot(self, attack_setup):
        params, graph, byz, budget = attack_setup
        run = run_congest_counting(
            graph, byzantine=byz, adversary=BeaconFloodAdversary(params),
            params=params, seed=2, max_rounds=budget,
        )
        estimates = run.outcome.estimates()
        assert estimates
        assert max(estimates) <= math.ceil(math.log(graph.n)) + 3

    def test_path_tamper_attack(self, attack_setup):
        params, graph, byz, budget = attack_setup
        run = run_congest_counting(
            graph, byzantine=byz, adversary=PathTamperAdversary(params),
            params=params, seed=3, max_rounds=budget,
        )
        outcome = run.outcome
        far = self._far_nodes(graph, byz, outcome)
        decided_far = [u for u in far if outcome.records[u].decided]
        assert len(decided_far) >= 0.9 * len(far)

    def test_continue_flood_does_not_change_estimates(self, attack_setup):
        params, graph, byz, budget = attack_setup
        attacked = run_congest_counting(
            graph, byzantine=byz, adversary=ContinueFloodAdversary(params),
            params=params, seed=4, max_rounds=budget,
        )
        outcome = attacked.outcome
        assert outcome.decided_fraction() == 1.0
        assert max(outcome.estimates()) <= math.ceil(math.log(graph.n)) + 1

    def test_blacklist_ablation_far_nodes_cannot_decide(self):
        # With blacklisting disabled, the flooding adversary keeps every good
        # node that can hear it from ever seeing a beacon-free iteration.
        params = CongestParameters(d=8, blacklist_enabled=False)
        graph = hnd_random_regular_graph(64, 8, seed=55)
        byzantine = spread_placement(graph, 2, seed=55)
        budget = params.rounds_through_phase(int(math.ceil(math.log(graph.n))) + 1)
        run = run_congest_counting(
            graph, byzantine=byzantine, adversary=BeaconFloodAdversary(params),
            params=params, seed=5, max_rounds=budget,
        )
        assert run.outcome.decided_fraction() < 0.5

    def test_blacklist_enabled_beats_ablation(self):
        graph = hnd_random_regular_graph(64, 8, seed=56)
        byzantine = spread_placement(graph, 2, seed=56)
        results = {}
        for enabled in (True, False):
            params = CongestParameters(d=8, blacklist_enabled=enabled)
            budget = params.rounds_through_phase(int(math.ceil(math.log(graph.n))) + 1)
            run = run_congest_counting(
                graph, byzantine=byzantine, adversary=BeaconFloodAdversary(params),
                params=params, seed=6, max_rounds=budget,
            )
            results[enabled] = run.outcome.decided_fraction()
        assert results[True] > results[False]

    def test_small_messages_under_attack(self, attack_setup):
        params, graph, byz, budget = attack_setup
        run = run_congest_counting(
            graph, byzantine=byz, adversary=BeaconFloodAdversary(params),
            params=params, seed=7, max_rounds=budget,
        )
        assert run.outcome.small_message_fraction >= 0.95
