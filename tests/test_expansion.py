"""Tests for vertex expansion, spectral bounds, and the Lemma 1 Good sets."""

import math

import pytest

from repro.graphs.expansion import (
    cheeger_lower_bound,
    good_set,
    good_treelike_set,
    out_neighbors,
    prune_to_expander,
    spectral_gap,
    vertex_expansion_exact,
    vertex_expansion_of_set,
    vertex_expansion_sampled,
)
from repro.graphs.generators import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.hnd import hnd_random_regular_graph


class TestOutNeighborsAndSetExpansion:
    def test_out_neighbors_basic(self):
        g = path_graph(5)
        assert out_neighbors(g, {1, 2}) == {0, 3}

    def test_out_neighbors_whole_graph_empty(self):
        g = cycle_graph(5)
        assert out_neighbors(g, set(range(5))) == set()

    def test_expansion_of_single_node(self):
        g = cycle_graph(6)
        assert vertex_expansion_of_set(g, {0}) == 2.0

    def test_expansion_of_empty_set_raises(self):
        with pytest.raises(ValueError):
            vertex_expansion_of_set(cycle_graph(5), set())

    def test_expansion_of_half_cycle(self):
        g = cycle_graph(8)
        assert vertex_expansion_of_set(g, {0, 1, 2, 3}) == pytest.approx(0.5)


class TestExactExpansion:
    def test_complete_graph(self):
        # K_4: any set S of size <= 2 has all remaining nodes as out-neighbors.
        assert vertex_expansion_exact(complete_graph(4)) == pytest.approx(1.0)

    def test_cycle_expansion_small(self):
        g = cycle_graph(10)
        # Worst set: a contiguous arc of 5 nodes with 2 out-neighbors.
        assert vertex_expansion_exact(g, max_n=12) == pytest.approx(2 / 5)

    def test_star_bottleneck(self):
        g = star_graph(7)
        # Leaves only connect through the hub: a set of 3 leaves has Out = {hub}.
        assert vertex_expansion_exact(g) == pytest.approx(1 / 3)

    def test_refuses_large_graphs(self):
        with pytest.raises(ValueError):
            vertex_expansion_exact(cycle_graph(50))

    def test_single_node_graph(self):
        from repro.graphs.graph import Graph

        assert vertex_expansion_exact(Graph(n=1, adjacency=[()])) == 0.0

    def test_disconnected_graph_zero(self):
        from repro.graphs.graph import Graph

        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert vertex_expansion_exact(g) == 0.0


class TestSampledExpansion:
    def test_upper_bounds_exact_on_small_graphs(self):
        g = cycle_graph(12)
        exact = vertex_expansion_exact(g, max_n=12)
        sampled = vertex_expansion_sampled(g, seed=0, num_samples=100)
        assert sampled >= exact - 1e-9

    def test_expander_vs_cycle_discrimination(self):
        expander = hnd_random_regular_graph(128, 8, seed=0)
        weak = cycle_graph(128)
        assert vertex_expansion_sampled(expander, seed=1, num_samples=60) > 5 * (
            vertex_expansion_sampled(weak, seed=1, num_samples=60)
        )

    def test_barbell_finds_bottleneck(self):
        g = barbell_graph(10, 2)
        assert vertex_expansion_sampled(g, seed=0, num_samples=150) <= 0.35

    def test_trivial_graphs(self):
        from repro.graphs.graph import Graph

        assert vertex_expansion_sampled(Graph(n=1, adjacency=[()])) == 0.0
        assert vertex_expansion_sampled(Graph(n=0, adjacency=[])) == 0.0


class TestSpectral:
    def test_spectral_gap_complete_graph(self):
        # K_n has eigenvalues n-1 and -1, so the gap is n.
        assert spectral_gap(complete_graph(6)) == pytest.approx(6.0, abs=1e-6)

    def test_spectral_gap_expander_large(self):
        g = hnd_random_regular_graph(200, 8, seed=1)
        # Ramanujan-ish: lambda_2 <= ~2*sqrt(7)+o(1) < 6, so gap > 2.
        assert spectral_gap(g) > 1.5

    def test_spectral_gap_cycle_small(self):
        assert spectral_gap(cycle_graph(100)) < 0.2

    def test_cheeger_bound_nonnegative_and_ordered(self):
        g = hnd_random_regular_graph(100, 8, seed=2)
        bound = cheeger_lower_bound(g)
        assert bound > 0
        assert bound <= vertex_expansion_sampled(g, seed=0, num_samples=50) + 1e-9

    def test_cheeger_bound_empty_graph(self):
        from repro.graphs.graph import Graph

        assert cheeger_lower_bound(Graph(n=0, adjacency=[])) == 0.0


class TestGoodSets:
    def test_good_set_excludes_byzantine_and_neighbors(self):
        g = hnd_random_regular_graph(64, 8, seed=3)
        byz = {0}
        good = good_set(g, byz, gamma=0.5)
        assert 0 not in good
        assert all(v not in good for v in g.neighbors(0))

    def test_good_set_literal_radius_zero(self):
        g = hnd_random_regular_graph(64, 8, seed=3)
        good = good_set(g, {0}, gamma=0.5, min_radius=0)
        # With the literal formula the radius is 0 at this size, so only the
        # Byzantine node itself is excluded.
        assert good == set(range(64)) - {0}

    def test_good_set_no_byzantine_is_everything(self):
        g = hnd_random_regular_graph(32, 4, seed=1)
        assert good_set(g, set(), gamma=0.5) == set(range(32))

    def test_good_set_size_lower_bound(self):
        g = hnd_random_regular_graph(256, 8, seed=4)
        byz = {1, 2, 3}
        good = good_set(g, byz, gamma=0.7)
        assert len(good) >= 256 - 3 * (1 + 8 + 56)  # |B(Byz, 1)| at most, loosely

    def test_good_set_empty_graph(self):
        from repro.graphs.graph import Graph

        assert good_set(Graph(n=0, adjacency=[]), set(), 0.5) == set()

    def test_good_set_with_pruning(self):
        g = hnd_random_regular_graph(128, 8, seed=5)
        good = good_set(g, {0}, gamma=0.5, alpha_prime=0.2, seed=1)
        assert 0 not in good
        assert len(good) >= 100

    def test_good_treelike_subset_of_good(self):
        g = hnd_random_regular_graph(128, 8, seed=6)
        byz = {5}
        gtl = good_treelike_set(g, byz, gamma=0.5)
        good = good_set(g, byz, gamma=0.5)
        assert gtl <= good

    def test_prune_to_expander_keeps_expander_intact(self):
        g = hnd_random_regular_graph(128, 8, seed=7)
        surviving = prune_to_expander(g, set(), target_expansion=0.2, seed=0)
        assert len(surviving) >= 120

    def test_prune_to_expander_removes_dangling_path(self):
        # An expander with a long path glued on: the path should be pruned.
        from repro.graphs.graph import Graph

        core = hnd_random_regular_graph(64, 8, seed=8)
        edges = list(core.edges())
        # Attach a 10-node path to node 0.
        for i in range(10):
            a = 64 + i
            b = 0 if i == 0 else 64 + i - 1
            edges.append((b, a))
        g = Graph.from_edges(74, edges)
        surviving = prune_to_expander(g, set(), target_expansion=0.3, seed=0)
        tail = set(range(64, 74))
        assert len(surviving & tail) < 10
