"""Tests for the auxiliary topologies (low-expansion graphs, constructions)."""

import pytest

from repro.graphs.generators import (
    barbell_graph,
    chained_copies_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    small_world_graph,
    star_graph,
    two_cliques_bridge_graph,
)
from repro.graphs.hnd import hnd_random_regular_graph


class TestBasicTopologies:
    def test_cycle(self):
        g = cycle_graph(10)
        assert g.n == 10
        assert g.num_edges() == 10
        assert all(g.degree(u) == 2 for u in range(10))

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_path(self):
        g = path_graph(6)
        assert g.num_edges() == 5
        assert g.degree(0) == 1
        assert g.degree(3) == 2

    def test_complete(self):
        g = complete_graph(7)
        assert g.num_edges() == 21
        assert all(g.degree(u) == 6 for u in range(7))

    def test_star(self):
        g = star_graph(9)
        assert g.degree(0) == 8
        assert all(g.degree(u) == 1 for u in range(1, 9))


class TestBarbell:
    def test_size(self):
        g = barbell_graph(5, 1)
        assert g.n == 10

    def test_bridge_nodes(self):
        g = barbell_graph(5, 3)
        assert g.n == 12
        assert g.is_connected()

    def test_two_cliques_bridge(self):
        g = two_cliques_bridge_graph(4)
        assert g.n == 9
        assert g.is_connected()
        # The middle node is a cut vertex of degree 2.
        bridge = [u for u in range(g.n) if g.degree(u) == 2]
        assert len(bridge) == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            barbell_graph(1, 1)
        with pytest.raises(ValueError):
            barbell_graph(5, 0)


class TestChainedCopies:
    def test_size_formula(self):
        base = cycle_graph(10)
        glued, shared, members = chained_copies_graph(base, 4)
        assert glued.n == 1 + 4 * 9
        assert shared == 0
        assert all(len(m) == 9 for m in members)

    def test_shared_node_degree(self):
        base = cycle_graph(10)
        glued, shared, _ = chained_copies_graph(base, 3)
        assert glued.degree(shared) == 3 * base.degree(0)

    def test_connected(self):
        base = hnd_random_regular_graph(16, 4, seed=0)
        glued, _, _ = chained_copies_graph(base, 3, seed=1)
        assert glued.is_connected()

    def test_membership_partitions_non_shared_nodes(self):
        base = cycle_graph(8)
        glued, shared, members = chained_copies_graph(base, 5)
        all_members = [u for group in members for u in group]
        assert len(all_members) == len(set(all_members)) == glued.n - 1
        assert shared not in all_members

    def test_single_copy_is_isomorphic_size(self):
        base = cycle_graph(12)
        glued, _, _ = chained_copies_graph(base, 1)
        assert glued.n == base.n
        assert glued.num_edges() == base.num_edges()

    def test_invalid_arguments(self):
        base = cycle_graph(6)
        with pytest.raises(ValueError):
            chained_copies_graph(base, 0)
        with pytest.raises(ValueError):
            chained_copies_graph(base, 2, attachment_node=99)


class TestSmallWorld:
    def test_size_and_connectivity(self):
        g = small_world_graph(64, k=4, rewire_probability=0.1, seed=0)
        assert g.n == 64
        assert g.is_connected()

    def test_zero_rewire_is_ring_lattice(self):
        g = small_world_graph(20, k=4, rewire_probability=0.0, seed=0)
        assert all(g.degree(u) == 4 for u in range(g.n))

    def test_deterministic(self):
        a = small_world_graph(40, seed=5)
        b = small_world_graph(40, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            small_world_graph(3)
        with pytest.raises(ValueError):
            small_world_graph(10, k=3)
        with pytest.raises(ValueError):
            small_world_graph(10, k=4, rewire_probability=1.5)
        with pytest.raises(ValueError):
            small_world_graph(10, k=12)
