"""Tests for chaos hardening: deterministic fault injection
(src/repro/runner/faults.py), the crash-safe sweep journal
(src/repro/runner/journal.py), resume semantics, backoff, and the
corrupt-artifact recovery path.

The equivalence tests follow the same pattern as tests/test_distributed.py:
real worker subprocesses against a real localhost broker, leasing tasks
registered in importable modules.  The property under test is *chaos
equivalence* -- a sweep executed under injected faults must produce results
and persisted artifacts byte-identical to the serial run -- not identical
fault timelines, which concurrency makes unreproducible across hosts.
"""

import json

import pytest

import repro.runner.testing  # noqa: F401  (registers testing.* sweep tasks)
from repro.cli import main
from repro.experiments import e3_benign
from repro.runner import (
    ArtifactStore,
    Backoff,
    BrokerError,
    DistributedBackend,
    FaultInjector,
    FaultPlan,
    InjectedBrokerCrash,
    InjectedFault,
    MISSING,
    SweepConfig,
    SweepJournal,
    SweepRunner,
)
from repro.runner.distributed.worker import WorkerDaemon
from repro.runner.journal import sweep_identity


# --------------------------------------------------------------------------- #
# FaultPlan
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_default_plan_is_inactive(self):
        assert not FaultPlan().active
        assert not FaultInjector(FaultPlan()).enabled
        assert not FaultInjector().enabled

    def test_any_positive_rate_activates(self):
        assert FaultPlan(drop_connection=0.01).active
        assert FaultPlan(crash_broker=1.0).active

    def test_round_trips_through_json(self):
        plan = FaultPlan(seed=3, crash_worker=0.25, slow_task=0.5, slow_s=0.1)
        document = json.loads(json.dumps(plan.to_dict()))
        assert FaultPlan.from_dict(document) == plan

    def test_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown fault plan field"):
            FaultPlan.from_dict({"crash_wroker": 0.5})

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_dict([1, 2])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"seed": "zero"},
            {"seed": True},
            {"drop_connection": -0.1},
            {"crash_worker": 1.5},
            {"slow_s": -1.0},
            {"hang_s": float("inf")},
        ],
    )
    def test_rejects_invalid_fields(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)


# --------------------------------------------------------------------------- #
# FaultInjector decision streams
# --------------------------------------------------------------------------- #
class _FakeSock:
    def __init__(self):
        self.sent = []
        self.closed = False

    def sendall(self, data):
        if self.closed:
            raise OSError("socket closed")
        self.sent.append(data)

    def close(self):
        self.closed = True


class TestFaultInjector:
    def _sequence(self, seed, salt, site="crash-worker", rate=0.3, n=50):
        injector = FaultInjector(FaultPlan(seed=seed, crash_worker=rate), salt=salt)
        return [injector.fires(site, rate) for _ in range(n)]

    def test_same_seed_and_salt_is_reproducible(self):
        assert self._sequence(1, "broker") == self._sequence(1, "broker")

    def test_different_salt_diverges(self):
        assert self._sequence(1, "worker-0") != self._sequence(1, "worker-1")

    def test_different_seed_diverges(self):
        assert self._sequence(1, "broker") != self._sequence(2, "broker")

    def test_rate_bounds(self):
        injector = FaultInjector(FaultPlan(seed=0, crash_worker=1.0), salt="w")
        assert all(injector.fires("site", 1.0) for _ in range(20))
        assert not any(injector.fires("site", 0.0) for _ in range(20))

    def test_injected_counts_per_site(self):
        injector = FaultInjector(FaultPlan(seed=0, crash_worker=1.0), salt="w")
        for _ in range(3):
            assert injector.crash_worker()
        assert injector.injected == {"crash-worker": 3}

    def test_disabled_injector_sends_directly(self):
        sock = _FakeSock()
        FaultInjector().send(sock, b"hello\n")
        assert sock.sent == [b"hello\n"] and not sock.closed

    def test_drop_connection_closes_and_raises_oserror(self):
        injector = FaultInjector(FaultPlan(seed=0, drop_connection=1.0), salt="w")
        sock = _FakeSock()
        with pytest.raises(InjectedFault):
            injector.send(sock, b"hello\n")
        assert sock.closed and sock.sent == []
        assert isinstance(InjectedFault("x"), OSError)

    def test_truncate_sends_prefix_then_drops(self):
        injector = FaultInjector(FaultPlan(seed=0, truncate_line=1.0), salt="w")
        sock = _FakeSock()
        with pytest.raises(InjectedFault):
            injector.send(sock, b"0123456789\n")
        assert sock.closed
        assert sock.sent == [b"01234"]

    def test_duplicate_sends_line_twice(self):
        injector = FaultInjector(FaultPlan(seed=0, duplicate_line=1.0), salt="w")
        sock = _FakeSock()
        injector.send(sock, b"hello\n")
        assert sock.sent == [b"hello\n", b"hello\n"] and not sock.closed


# --------------------------------------------------------------------------- #
# Backoff
# --------------------------------------------------------------------------- #
class TestBackoff:
    def test_exponential_growth_with_cap(self):
        backoff = Backoff(base_s=0.5, cap_s=4.0, factor=2.0, jitter=0.0)
        assert [backoff.next_delay() for _ in range(6)] == [
            0.5,
            1.0,
            2.0,
            4.0,
            4.0,
            4.0,
        ]
        assert backoff.attempts == 6

    def test_reset_clears_the_streak(self):
        backoff = Backoff(base_s=0.5, cap_s=4.0, jitter=0.0)
        backoff.next_delay()
        backoff.next_delay()
        backoff.reset()
        assert backoff.attempts == 0
        assert backoff.next_delay() == 0.5

    def test_jitter_stays_in_bounds_and_is_seedable(self):
        a = Backoff(base_s=1.0, cap_s=8.0, jitter=0.25, seed=7)
        b = Backoff(base_s=1.0, cap_s=8.0, jitter=0.25, seed=7)
        delays = [a.next_delay() for _ in range(8)]
        assert delays == [b.next_delay() for _ in range(8)]
        for attempt, delay in enumerate(delays):
            ideal = min(8.0, 1.0 * 2.0**attempt)
            assert ideal * 0.75 <= delay <= ideal * 1.25

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_s": 0.0},
            {"base_s": 2.0, "cap_s": 1.0},
            {"factor": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_rejects_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            Backoff(**kwargs)


# --------------------------------------------------------------------------- #
# SweepJournal
# --------------------------------------------------------------------------- #
def _configs(n=3):
    return [SweepConfig("testing.sleep_echo", {"value": i}) for i in range(n)]


class TestSweepJournal:
    def test_identity_depends_on_content_and_order(self):
        configs = _configs()
        assert sweep_identity(configs) == sweep_identity(list(configs))
        assert sweep_identity(configs) != sweep_identity(configs[::-1])
        assert sweep_identity(configs) != sweep_identity(configs[:2])

    def test_lifecycle(self, tmp_path):
        configs = _configs()
        journal = SweepJournal.for_configs(tmp_path, configs)
        assert journal.load() is None
        assert journal.begin(configs) is None
        journal.mark_done(1)
        journal.mark_many([0], cached=True)
        state = journal.load()
        assert state["done"] == [0, 1] and state["cached"] == [0]
        assert not state["complete"] and state["error"] is None
        journal.finish(stats={"retries": 2}, events=[{"event": "lease-grant"}])
        state = journal.load()
        assert state["complete"]
        assert state["stats"] == {"retries": 2}
        assert state["events"] == [{"event": "lease-grant"}]
        assert state["tasks"][0]["key"] == configs[0].key()

    def test_abort_records_error_and_stays_incomplete(self, tmp_path):
        configs = _configs()
        journal = SweepJournal.for_configs(tmp_path, configs)
        journal.begin(configs)
        journal.abort("BrokerError('boom')")
        state = journal.load()
        assert not state["complete"] and "boom" in state["error"]
        assert SweepJournal.incomplete_in(tmp_path) == [journal.path]

    def test_begin_resets_completions_and_counts_resumes(self, tmp_path):
        configs = _configs()
        journal = SweepJournal.for_configs(tmp_path, configs)
        journal.begin(configs)
        journal.mark_done(0)
        prior = journal.begin(configs, resume=True)
        assert prior["done"] == [0]
        state = journal.load()
        assert state["done"] == [] and state["resumed"] == 1
        journal.begin(configs, resume=True)
        assert journal.load()["resumed"] == 2

    def test_corrupt_or_foreign_journal_reads_as_absent(self, tmp_path):
        configs = _configs()
        journal = SweepJournal.for_configs(tmp_path, configs)
        journal.begin(configs)
        journal.path.write_text("{ truncated", encoding="utf-8")
        assert journal.load() is None
        assert SweepJournal.incomplete_in(tmp_path) == []
        other = SweepJournal(journal.path, "0" * 16, len(configs))
        journal.begin(configs)
        assert other.load() is None

    def test_flush_leaves_no_temp_files(self, tmp_path):
        configs = _configs()
        journal = SweepJournal.for_configs(tmp_path, configs)
        journal.begin(configs)
        for i in range(3):
            journal.mark_done(i)
        assert [p.name for p in tmp_path.glob("*.tmp")] == []


# --------------------------------------------------------------------------- #
# Resume semantics
# --------------------------------------------------------------------------- #
class TestResume:
    def test_resume_requires_artifact_dir(self):
        with pytest.raises(ValueError, match="resume requires an artifact_dir"):
            SweepRunner(resume=True)

    def test_resume_conflicts_with_force(self, tmp_path):
        with pytest.raises(ValueError, match="contradictory"):
            SweepRunner(artifact_dir=tmp_path, resume=True, force=True)

    def test_cli_resume_requires_artifact_dir(self, tmp_path):
        spec = tmp_path / "spec.json"
        with pytest.raises(SystemExit, match="--resume requires --artifact-dir"):
            main(["scenario", "run", str(spec), "--resume"])

    def test_cli_fault_plan_requires_distributed(self, tmp_path):
        spec = tmp_path / "spec.json"
        with pytest.raises(SystemExit, match="--fault-plan"):
            main(["scenario", "run", str(spec), "--fault-plan", "{}"])

    def test_serial_run_maintains_a_complete_journal(self, tmp_path, capsys):
        configs = _configs()
        runner = SweepRunner(artifact_dir=tmp_path)
        runner.run(configs)
        state = SweepJournal.for_configs(tmp_path, configs).load()
        assert state["complete"] and state["done"] == [0, 1, 2]
        resumed = SweepRunner(artifact_dir=tmp_path, resume=True)
        out = resumed.run(configs)
        assert out == [{"value": 0}, {"value": 1}, {"value": 2}]
        assert resumed.last_cached == 3 and resumed.last_executed == 0
        assert "resuming sweep" in capsys.readouterr().err

    def test_resume_after_injected_broker_crash_matches_serial(self, tmp_path):
        configs = e3_benign.sweep_configs(sizes=(48,), trials=2, seed=0)
        serial = SweepRunner().run(configs)

        # crash_broker=1.0: the broker persists the first streamed result,
        # then dies before publishing it -- the nastiest crash point, where
        # only the artifact cache knows the truth.
        chaos = SweepRunner(
            artifact_dir=tmp_path,
            backend=DistributedBackend(
                spawn_workers=2,
                fault_plan=FaultPlan(seed=0, crash_broker=1.0),
                quiet=True,
            ),
        )
        with pytest.raises(InjectedBrokerCrash, match="--resume"):
            chaos.run(configs)
        journal = SweepJournal.for_configs(tmp_path, configs)
        state = journal.load()
        assert not state["complete"] and "InjectedBrokerCrash" in state["error"]
        persisted = [
            config
            for config in configs
            if ArtifactStore(tmp_path).load(config) is not MISSING
        ]
        assert persisted  # the crash happened after a persist

        resumed = SweepRunner(artifact_dir=tmp_path, resume=True)
        assert resumed.run(configs) == serial
        assert resumed.last_cached >= len(persisted)
        state = journal.load()
        assert state["complete"] and state["resumed"] == 1
        assert len(state["done"]) == len(configs)


# --------------------------------------------------------------------------- #
# Chaos equivalence (the property test)
# --------------------------------------------------------------------------- #
#: Moderate everything-at-once schedule: wire faults, refused connects,
#: worker crashes, slowed tasks, artifact-write failures.  Durations are
#: tiny and hangs are off to keep the test fast; crash storms are absorbed
#: by the raised retry/respawn budgets.
CHAOS_RATES = dict(
    drop_connection=0.05,
    truncate_line=0.03,
    duplicate_line=0.05,
    delay_line=0.05,
    delay_s=0.01,
    refuse_connect=0.10,
    crash_worker=0.05,
    slow_task=0.2,
    slow_s=0.01,
    fail_artifact_write=0.10,
)


class TestChaosEquivalence:
    @pytest.mark.parametrize("plan_seed", [1, 2])
    def test_faulty_sweep_is_byte_identical_to_serial(self, tmp_path, plan_seed):
        configs = e3_benign.sweep_configs(sizes=(48,), trials=2, seed=0)
        serial_dir = tmp_path / "serial"
        chaos_dir = tmp_path / f"chaos-{plan_seed}"
        serial = SweepRunner(artifact_dir=serial_dir).run(configs)

        runner = SweepRunner(
            artifact_dir=chaos_dir,
            backend=DistributedBackend(
                spawn_workers=2,
                fault_plan=FaultPlan(seed=plan_seed, **CHAOS_RATES),
                max_retries=10,
                respawn_factor=8,
                quiet=True,
            ),
        )
        assert runner.run(configs) == serial

        def documents(directory):
            store = ArtifactStore(directory)
            docs = []
            for config in configs:
                document = json.loads(store.path_for(config).read_text())
                # meta legitimately differs (pids, hosts, wall-clocks);
                # config + result must be byte-identical.
                docs.append(
                    json.dumps(
                        {"config": document["config"], "result": document["result"]},
                        sort_keys=True,
                    )
                )
            return docs

        assert documents(serial_dir) == documents(chaos_dir)
        state = SweepJournal.for_configs(chaos_dir, configs).load()
        assert state["complete"] and len(state["done"]) == len(configs)


# --------------------------------------------------------------------------- #
# Broker telemetry surfaced through the runner
# --------------------------------------------------------------------------- #
class TestBrokerEvents:
    def test_events_reach_backend_runner_and_journal(self, tmp_path):
        configs = _configs(4)
        backend = DistributedBackend(spawn_workers=1, quiet=True)
        runner = SweepRunner(artifact_dir=tmp_path, backend=backend)
        runner.run(configs)
        kinds = {event["event"] for event in backend.last_events}
        assert {"worker-connect", "lease-grant"} <= kinds
        assert runner.last_events == backend.last_events
        for event in backend.last_events:
            assert isinstance(event["t"], float)
        state = SweepJournal.for_configs(tmp_path, configs).load()
        assert state["events"] == backend.last_events
        assert state["stats"] == backend.last_stats

    def test_dedupe_hits_are_logged(self, tmp_path):
        config = SweepConfig("testing.sleep_echo", {"value": 7, "sleep_s": 0.2})
        backend = DistributedBackend(spawn_workers=1, quiet=True)
        runner = SweepRunner(artifact_dir=tmp_path, backend=backend)
        runner.run([config, config])
        kinds = [event["event"] for event in backend.last_events]
        assert "dedupe-hit" in kinds


# --------------------------------------------------------------------------- #
# Worker backoff and give-up
# --------------------------------------------------------------------------- #
class TestWorkerGiveUp:
    def test_one_shot_worker_counts_attempts_not_wall_time(self):
        # Nothing listens on the target port: every connect fails fast, and
        # the give-up guard counts backoff attempts, so tiny delays make
        # the whole retry ladder sub-second.
        daemon = WorkerDaemon(
            "127.0.0.1",
            1,
            exit_when_drained=True,
            reconnect_delay_s=0.01,
            reconnect_max_s=0.02,
            giveup_attempts=3,
        )
        assert daemon.run() == 1
        assert daemon.connect_failures == 3

    def test_injected_connect_refusals_count_toward_give_up(self):
        injector = FaultInjector(FaultPlan(seed=0, refuse_connect=1.0), salt="w")
        daemon = WorkerDaemon(
            "127.0.0.1",
            1,
            exit_when_drained=True,
            reconnect_delay_s=0.01,
            reconnect_max_s=0.02,
            giveup_attempts=3,
            injector=injector,
        )
        assert daemon.run() == 1
        assert injector.injected["refuse-connect"] == 3

    def test_persistent_worker_has_no_give_up(self):
        daemon = WorkerDaemon(
            "127.0.0.1",
            1,
            exit_when_drained=False,
            reconnect_delay_s=0.01,
            reconnect_max_s=0.02,
            giveup_attempts=1,
        )
        import threading

        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        thread.join(timeout=0.3)
        assert thread.is_alive()  # still retrying, not given up
        daemon.stop()
        thread.join(timeout=2.0)
        assert not thread.is_alive()


# --------------------------------------------------------------------------- #
# Corrupt artifacts are warned-about cache misses
# --------------------------------------------------------------------------- #
class TestCorruptArtifacts:
    def test_truncated_artifact_warns_and_reexecutes(self, tmp_path, capsys):
        config = _configs(1)[0]
        store = ArtifactStore(tmp_path)
        path = store.store(config, {"value": 0})
        path.write_text('{"config": {}, "resu', encoding="utf-8")

        assert store.load(config) is MISSING
        err = capsys.readouterr().err
        assert "ignoring corrupt artifact" in err and "cache miss" in err

        runner = SweepRunner(artifact_dir=tmp_path)
        assert runner.run([config]) == [{"value": 0}]
        assert runner.last_executed == 1
        # The re-execution overwrote the corrupt file with a good one.
        fresh = ArtifactStore(tmp_path)
        assert fresh.load(config) == {"value": 0}

    def test_wrong_shape_document_warns(self, tmp_path, capsys):
        config = _configs(1)[0]
        store = ArtifactStore(tmp_path)
        path = store.store(config, {"value": 0})
        path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
        assert store.load(config) is MISSING
        assert store.load_meta(config) is None
        assert "not an artifact object" in capsys.readouterr().err

    def test_warning_is_deduplicated_per_path(self, tmp_path, capsys):
        config = _configs(1)[0]
        store = ArtifactStore(tmp_path)
        path = store.store(config, {"value": 0})
        path.write_text("{ nope", encoding="utf-8")
        assert store.load(config) is MISSING
        assert store.load_meta(config) is None
        assert store.load(config) is MISSING
        assert capsys.readouterr().err.count("ignoring corrupt artifact") == 1

    def test_missing_artifact_stays_silent(self, tmp_path, capsys):
        store = ArtifactStore(tmp_path)
        assert store.load(_configs(1)[0]) is MISSING
        assert store.load_meta(_configs(1)[0]) is None
        assert capsys.readouterr().err == ""
