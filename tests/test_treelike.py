"""Tests for the locally tree-like classification (Definition 3 / Lemma 2)."""

import pytest

from repro.graphs.generators import complete_graph, cycle_graph
from repro.graphs.graph import Graph
from repro.graphs.hnd import hnd_random_regular_graph
from repro.graphs.treelike import is_locally_treelike, treelike_nodes, treelike_radius


def _full_binary_tree(depth: int) -> Graph:
    """A rooted tree in which the root has 3 children and every internal node
    has 2 children -- i.e. the ball around the root is a (d-1)-ary tree for d=3."""
    edges = []
    nodes = [0]
    next_id = 1
    # Root gets 3 children.
    root_children = []
    for _ in range(3):
        edges.append((0, next_id))
        root_children.append(next_id)
        next_id += 1
    frontier = root_children
    for _ in range(depth - 1):
        new_frontier = []
        for u in frontier:
            for _ in range(2):
                edges.append((u, next_id))
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return Graph.from_edges(next_id, edges)


class TestTreelikeRadius:
    def test_formula(self):
        import math

        assert treelike_radius(1000, 8) == max(1, int(math.log(1000) / (10 * math.log(8))))

    def test_minimum_one(self):
        assert treelike_radius(10, 8) == 1
        assert treelike_radius(1, 2) == 1


class TestIsLocallyTreelike:
    def test_tree_root_is_treelike(self):
        g = _full_binary_tree(3)
        assert is_locally_treelike(g, 0, degree=3, radius=2)

    def test_cycle_node_not_treelike_at_wrap_radius(self):
        g = cycle_graph(6)
        # Radius 3 closes the cycle (distance-3 node reached from both sides).
        assert not is_locally_treelike(g, 0, degree=2, radius=3)

    def test_cycle_node_treelike_at_small_radius(self):
        g = cycle_graph(20)
        assert is_locally_treelike(g, 0, degree=2, radius=2)

    def test_triangle_never_treelike(self):
        g = complete_graph(3)
        assert not is_locally_treelike(g, 0, degree=2, radius=1)

    def test_degree_deficiency_not_treelike(self):
        # A node of degree d-1 in a nominally d-regular graph is atypical.
        g = cycle_graph(10)
        assert not is_locally_treelike(g, 0, degree=3, radius=1)

    def test_radius_zero_always_treelike(self):
        g = complete_graph(4)
        assert is_locally_treelike(g, 0, degree=3, radius=0)


class TestTreelikeNodes:
    def test_lemma2_fraction_on_hnd(self):
        g = hnd_random_regular_graph(512, 8, seed=0)
        tl = treelike_nodes(g)
        # Lemma 2: at least n - O(n^0.8) tree-like nodes; 512^0.8 ~ 147, so
        # even with a generous constant the tree-like set is large.
        assert len(tl) >= 512 - 2 * 512 ** 0.8

    def test_cycle_all_treelike_at_radius_one(self):
        g = cycle_graph(30)
        assert treelike_nodes(g, degree=2, radius=1) == set(range(30))

    def test_complete_graph_none_treelike(self):
        g = complete_graph(5)
        assert treelike_nodes(g, degree=4, radius=1) == set()

    def test_respects_explicit_radius(self):
        g = cycle_graph(12)
        assert treelike_nodes(g, degree=2, radius=2) == set(range(12))
        assert treelike_nodes(g, degree=2, radius=6) == set()
