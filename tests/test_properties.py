"""Property-based tests (hypothesis) for the core data structures and invariants."""

import math
import random

from hypothesis import given, settings, strategies as st

from repro.core.blacklist import PhaseBlacklist, split_trusted_suffix
from repro.core.congest_counting import PhaseSchedule
from repro.core.parameters import CongestParameters
from repro.graphs.expansion import out_neighbors, vertex_expansion_of_set
from repro.graphs.graph import Graph
from repro.graphs.hnd import hnd_random_regular_graph
from repro.graphs.neighborhoods import ball, boundary, layers
from repro.simulator.messages import Message, estimate_payload_bits
from repro.simulator.rng import split_seed

# ---------------------------------------------------------------------------#
# Strategies
# ---------------------------------------------------------------------------#


@st.composite
def random_graphs(draw):
    """Random simple graphs with 2..24 nodes."""
    n = draw(st.integers(min_value=2, max_value=24))
    possible_edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible_edges), max_size=min(60, len(possible_edges)))
    )
    return Graph.from_edges(n, edges)


@st.composite
def connected_graphs(draw):
    """Connected random graphs: a random spanning tree plus extra edges."""
    n = draw(st.integers(min_value=2, max_value=20))
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    edges = [(u, rng.randrange(0, u)) for u in range(1, n)]
    extra = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)), max_size=20
        )
    )
    edges.extend((u, v) for u, v in extra if u != v)
    return Graph.from_edges(n, edges)


# ---------------------------------------------------------------------------#
# Graph invariants
# ---------------------------------------------------------------------------#


class TestGraphProperties:
    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_handshake_lemma(self, g):
        assert sum(g.degree(u) for u in range(g.n)) == 2 * g.num_edges()

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_adjacency_symmetric(self, g):
        for u in range(g.n):
            for v in g.neighbors(u):
                assert u in g.neighbors(v)

    @given(random_graphs())
    @settings(max_examples=60, deadline=None)
    def test_components_partition_vertices(self, g):
        components = g.connected_components()
        all_nodes = [u for comp in components for u in comp]
        assert sorted(all_nodes) == list(range(g.n))

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_bfs_distances_triangle_inequality_over_edges(self, g):
        dist = g.bfs_distances(0)
        for u, v in g.edges():
            assert abs(dist[u] - dist[v]) <= 1

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_diameter_at_least_any_eccentricity_bound(self, g):
        diameter = g.diameter()
        assert diameter >= g.eccentricity(0) - 0  # eccentricity <= diameter
        assert g.eccentricity(0) <= diameter


class TestNeighborhoodProperties:
    @given(connected_graphs(), st.integers(min_value=0, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_ball_monotone_and_boundary_consistent(self, g, radius):
        b_small = ball(g, 0, radius)
        b_big = ball(g, 0, radius + 1)
        assert b_small <= b_big
        assert b_big - b_small == boundary(g, 0, radius + 1)

    @given(connected_graphs(), st.integers(min_value=0, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_layers_union_equals_ball(self, g, radius):
        layer_sets = layers(g, 0, radius)
        union = set().union(*layer_sets) if layer_sets else set()
        assert union == ball(g, 0, radius)

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_out_neighbors_disjoint_from_set(self, g):
        subset = set(range(0, g.n, 2))
        out = out_neighbors(g, subset)
        assert out.isdisjoint(subset)
        assert out <= set(range(g.n))

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_expansion_nonnegative_and_degree_bounded(self, g):
        subset = {0}
        value = vertex_expansion_of_set(g, subset)
        assert 0 <= value <= g.max_degree()


# ---------------------------------------------------------------------------#
# Simulator invariants
# ---------------------------------------------------------------------------#


class TestMessageProperties:
    @given(
        st.recursive(
            st.one_of(
                st.none(), st.booleans(), st.integers(-(2**40), 2**40),
                st.floats(allow_nan=False, allow_infinity=False), st.text(max_size=10),
            ),
            lambda children: st.lists(children, max_size=4),
            max_leaves=12,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_payload_bits_positive(self, payload):
        assert estimate_payload_bits(payload) >= 1

    @given(st.integers(min_value=0, max_value=2**30), st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_clone_preserves_accounting(self, value, num_ids):
        m = Message.make("k", value, num_ids=num_ids)
        c = m.clone()
        assert (c.size_bits, c.num_ids, c.kind) == (m.size_bits, m.num_ids, m.kind)

    @given(st.integers(min_value=0), st.lists(st.text(max_size=6), max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_split_seed_deterministic_and_label_dependent(self, seed, labels):
        assert split_seed(seed, *labels) == split_seed(seed, *labels)
        assert 0 <= split_seed(seed, *labels) < 2**64


# ---------------------------------------------------------------------------#
# Algorithm 2 component invariants
# ---------------------------------------------------------------------------#


class TestBlacklistProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=12),
        st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=80, deadline=None)
    def test_split_partition(self, path, suffix):
        far, trusted = split_trusted_suffix(path, suffix)
        assert list(far) + list(trusted) == list(path)
        assert len(trusted) <= max(suffix, len(path))

    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=8),
            min_size=1,
            max_size=10,
        ),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_blacklisted_paths_are_blocked(self, paths, suffix):
        bl = PhaseBlacklist()
        for path in paths:
            bl.add_path(path, suffix)
        # Every path whose far prefix is non-empty must now be blocked.
        for path in paths:
            far, _ = split_trusted_suffix(path, suffix)
            if far:
                assert bl.blocks_path(path, suffix)

    @given(st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_reset_clears_everything(self, path):
        bl = PhaseBlacklist()
        bl.add_path(path, 0)
        bl.reset()
        assert len(bl) == 0


class TestScheduleProperties:
    @given(st.integers(min_value=1, max_value=5000))
    @settings(max_examples=100, deadline=None)
    def test_locate_within_bounds(self, round_number):
        params = CongestParameters()
        schedule = PhaseSchedule(params)
        pos = schedule.locate(round_number)
        assert pos.phase >= params.first_phase
        assert 1 <= pos.iteration <= params.iterations_in_phase(pos.phase)
        assert 1 <= pos.step <= params.rounds_per_iteration(pos.phase)

    @given(st.integers(min_value=1, max_value=2000))
    @settings(max_examples=60, deadline=None)
    def test_locate_consecutive_rounds_advance(self, round_number):
        schedule = PhaseSchedule(CongestParameters())
        a = schedule.locate(round_number)
        b = schedule.locate(round_number + 1)
        assert (b.phase, b.iteration, b.step) != (a.phase, a.iteration, a.step)
        assert b.phase >= a.phase

    @given(st.integers(min_value=2, max_value=12))
    @settings(max_examples=30, deadline=None)
    def test_activation_probability_in_unit_interval(self, phase):
        params = CongestParameters()
        assert 0.0 <= params.activation_probability(phase) <= 1.0


class TestHndProperties:
    @given(st.integers(min_value=8, max_value=60), st.sampled_from([2, 4, 6, 8]))
    @settings(max_examples=25, deadline=None)
    def test_hnd_degree_bound_and_connectivity(self, n, d):
        g = hnd_random_regular_graph(n, d, seed=n * 31 + d)
        assert g.max_degree() <= d
        assert g.is_connected()
