"""Tests for the Theorem 3 construction and indistinguishability experiment."""

import math

import pytest

from repro.core.congest_counting import CongestCountingProtocol, PhaseSchedule
from repro.core.parameters import CongestParameters
from repro.graphs.generators import cycle_graph
from repro.graphs.hnd import hnd_random_regular_graph
from repro.impossibility import (
    SimulatingCutAdversary,
    build_chained_instance,
    copies_isomorphic_to_base,
    run_indistinguishability_experiment,
)


class TestConstruction:
    def test_instance_bookkeeping(self):
        base = cycle_graph(12)
        instance = build_chained_instance(base, 4)
        assert instance.num_copies == 4
        assert instance.glued.n == 1 + 4 * 11
        assert instance.copy_of(instance.shared_node) is None
        some_member = instance.copy_membership[2][0]
        assert instance.copy_of(some_member) == 2

    def test_copies_isomorphic_to_base_cycle(self):
        base = cycle_graph(10)
        instance = build_chained_instance(base, 3)
        assert copies_isomorphic_to_base(instance)

    def test_copies_isomorphic_to_base_expander(self):
        base = hnd_random_regular_graph(24, 4, seed=1)
        instance = build_chained_instance(base, 5, seed=2)
        assert copies_isomorphic_to_base(instance)

    def test_shared_node_degree_multiplied(self):
        base = hnd_random_regular_graph(24, 4, seed=1)
        instance = build_chained_instance(base, 5, seed=2)
        assert instance.glued.degree(instance.shared_node) == 5 * base.degree(0)


class TestSimulatingCutAdversary:
    def test_requires_shared_node_to_be_byzantine(self):
        base = cycle_graph(8)
        instance = build_chained_instance(base, 2)
        params = CongestParameters(d=4)
        schedule = PhaseSchedule(params)
        adversary = SimulatingCutAdversary(
            instance, lambda ctx: CongestCountingProtocol(ctx, params, schedule)
        )
        import random

        with pytest.raises(ValueError):
            adversary.setup(instance.glued, frozenset({1}), random.Random(0))

    def test_builds_one_simulated_protocol_per_copy(self):
        base = hnd_random_regular_graph(16, 4, seed=3)
        instance = build_chained_instance(base, 3, seed=3)
        params = CongestParameters(d=4)
        schedule = PhaseSchedule(params)
        adversary = SimulatingCutAdversary(
            instance, lambda ctx: CongestCountingProtocol(ctx, params, schedule)
        )
        import random

        adversary.setup(instance.glued, frozenset({instance.shared_node}), random.Random(0))
        assert set(adversary.simulated_estimates()) == {0, 1, 2}


class TestIndistinguishabilityExperiment:
    @pytest.fixture(scope="class")
    def outcome(self):
        base = hnd_random_regular_graph(48, 8, seed=5)
        return run_indistinguishability_experiment(base, 8, seed=5, num_trials=2)

    def test_demonstrates_impossibility(self, outcome):
        assert outcome.demonstrates_impossibility()

    def test_glued_estimates_track_base_size(self, outcome):
        assert outcome.glued_fraction_matching_base_size >= 0.8
        assert abs(outcome.glued_median_estimate - outcome.base_median_estimate) <= 1.0

    def test_hidden_growth_is_large(self, outcome):
        assert outcome.log_glued_n - outcome.log_base_n >= 1.5

    def test_summary_keys(self, outcome):
        summary = outcome.summary()
        assert summary["copies"] == 8
        assert summary["glued_n"] == outcome.glued_n
