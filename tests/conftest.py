"""Shared fixtures.

Expensive simulation runs are session-scoped so many tests can assert
different properties of the same execution without re-running it.
"""

from __future__ import annotations

import pytest

from repro.core.congest_counting import run_congest_counting
from repro.core.local_counting import run_local_counting
from repro.core.parameters import CongestParameters, LocalParameters
from repro.graphs.expanders import hypercube_graph, margulis_torus_graph
from repro.graphs.generators import barbell_graph, cycle_graph
from repro.graphs.hnd import hnd_random_regular_graph


@pytest.fixture(scope="session")
def small_hnd():
    """A 64-node H(n, 8) graph used across many tests."""
    return hnd_random_regular_graph(64, 8, seed=1)


@pytest.fixture(scope="session")
def medium_hnd():
    """A 128-node H(n, 8) graph."""
    return hnd_random_regular_graph(128, 8, seed=2)


@pytest.fixture(scope="session")
def tiny_cycle():
    """An 8-node cycle (low expansion)."""
    return cycle_graph(8)


@pytest.fixture(scope="session")
def small_barbell():
    """A barbell graph with a bottleneck bridge."""
    return barbell_graph(8, 2)


@pytest.fixture(scope="session")
def small_hypercube():
    """The 5-dimensional hypercube (32 nodes, degree 5)."""
    return hypercube_graph(5)


@pytest.fixture(scope="session")
def small_margulis():
    """The 8x8 Margulis torus expander (64 nodes, degree <= 8)."""
    return margulis_torus_graph(8)


@pytest.fixture(scope="session")
def local_params():
    """Default Algorithm 1 parameters for degree-8 graphs."""
    return LocalParameters(gamma=0.7, max_degree=8)


@pytest.fixture(scope="session")
def congest_params():
    """Default Algorithm 2 parameters for degree-8 graphs."""
    return CongestParameters(d=8)


@pytest.fixture(scope="session")
def benign_local_run(small_hnd, local_params):
    """One benign Algorithm 1 execution on the 64-node graph."""
    return run_local_counting(small_hnd, params=local_params, seed=3)


@pytest.fixture(scope="session")
def benign_congest_run(small_hnd, congest_params):
    """One benign Algorithm 2 execution on the 64-node graph."""
    return run_congest_counting(small_hnd, params=congest_params, seed=3)


@pytest.fixture(scope="session")
def benign_congest_run_quiescent(small_hnd, congest_params):
    """Benign Algorithm 2 execution run to full quiescence (Corollary 1 mode)."""
    return run_congest_counting(
        small_hnd, params=congest_params, seed=4, stop_when_all_decided=False
    )
