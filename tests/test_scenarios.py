"""Tests for the declarative scenario API (src/repro/scenarios/)."""

import json
import random
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.parameters import CongestParameters, LocalParameters
from repro.scenarios import (
    ADVERSARIES,
    GRAPHS,
    PLACEMENTS,
    PROTOCOLS,
    ComponentRegistry,
    ComponentSpec,
    Scenario,
    ScenarioSuite,
    UnknownComponentError,
    all_registries,
    make_adversary,
    materialize,
    place_byzantine,
)
from repro.scenarios.spec import SCENARIO_TASK

EXAMPLES = Path(__file__).parent.parent / "examples"
GOLDEN = Path(__file__).parent / "golden"


class TestRegistries:
    def test_expected_components_registered(self):
        assert "hnd" in GRAPHS and "margulis" in GRAPHS
        assert "beacon-flood" in ADVERSARIES and "silent" in ADVERSARIES
        assert "spread" in PLACEMENTS and "high-degree" in PLACEMENTS
        # PR 10 folded the protocol zoo into the registry alongside the
        # paper's two algorithms.
        assert PROTOCOLS.names() == [
            "benor",
            "congest",
            "flooding",
            "geometric",
            "grouped-bft",
            "local",
            "spanning-tree",
            "support-estimation",
        ]

    def test_unknown_name_raises_with_valid_names(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            GRAPHS.get("nope")
        message = str(excinfo.value)
        assert "nope" in message
        for name in GRAPHS.names():
            assert name in message
        # The error is a ValueError, so legacy `raises(ValueError)` call
        # sites keep working.
        assert isinstance(excinfo.value, ValueError)

    def test_duplicate_registration_rejected(self):
        registry = ComponentRegistry("thing")
        registry.register("x")(lambda: 1)
        with pytest.raises(ValueError, match="registered twice"):
            registry.register("x")(lambda: 2)

    def test_entries_carry_descriptions(self):
        for registry in all_registries().values():
            for entry in registry.entries():
                assert entry.description, f"{registry.kind} {entry.name} lacks a docstring"


class TestUniformAdversaryConstruction:
    """The behaviour registry owns construction: call sites never branch."""

    def test_silent_ignores_protocol_params(self):
        adversary = make_adversary("silent", CongestParameters())
        assert type(adversary).__name__ == "SilentAdversary"

    def test_scheduled_attack_reads_congest_schedule(self):
        params = CongestParameters(gamma=0.5, d=8)
        adversary = make_adversary("beacon-flood", params)
        assert adversary.params is params

    def test_scheduled_attack_defaults_without_congest_params(self):
        # Local-protocol parameter objects (and None) leave the scheduled
        # attack with its own default schedule, like the historical CLI.
        for protocol_params in (None, LocalParameters()):
            adversary = make_adversary("beacon-flood", protocol_params)
            assert isinstance(adversary.params, CongestParameters)

    def test_behaviour_kwargs_forwarded(self):
        adversary = make_adversary("path-tamper", None, fake_path_length=5)
        assert adversary.fake_path_length == 5


class TestPlacement:
    def test_zero_count_is_empty_but_still_validates(self):
        from repro.graphs.generators import cycle_graph

        graph = cycle_graph(8)
        assert place_byzantine("random", graph, 0, seed=0) == set()
        with pytest.raises(UnknownComponentError):
            place_byzantine("nope", graph, 0, seed=0)

    def test_matches_direct_strategy_call(self):
        from repro.adversary.placement import spread_placement
        from repro.graphs.hnd import hnd_random_regular_graph

        graph = hnd_random_regular_graph(64, 8, seed=3)
        assert place_byzantine("spread", graph, 4, seed=7) == spread_placement(
            graph, 4, seed=7
        )


def _random_scenario(rng: random.Random) -> Scenario:
    """A random-but-valid scenario for the round-trip property test."""
    def params(depth=0):
        out = {}
        for _ in range(rng.randrange(0, 4)):
            key = f"k{rng.randrange(10)}"
            choice = rng.randrange(6 if depth < 2 else 4)
            if choice == 0:
                out[key] = rng.randrange(-100, 100)
            elif choice == 1:
                out[key] = rng.choice([True, False, None])
            elif choice == 2:
                out[key] = round(rng.uniform(-5, 5), 6)
            elif choice == 3:
                out[key] = f"s{rng.randrange(100)}"
            elif choice == 4:
                out[key] = [rng.randrange(10) for _ in range(rng.randrange(3))]
            else:
                out[key] = params(depth + 1)
        return out

    return Scenario(
        name=f"random-{rng.randrange(1000)}",
        graph=ComponentSpec(
            rng.choice(GRAPHS.names()), params(), seed_offset=rng.randrange(-5, 50)
        ),
        adversary=ComponentSpec(rng.choice(ADVERSARIES.names()), params()),
        placement=ComponentSpec(
            rng.choice(PLACEMENTS.names()), params(), seed_offset=rng.randrange(0, 9)
        ),
        protocol=ComponentSpec(rng.choice(PROTOCOLS.names()), params()),
        params=params(),
        seeds=tuple(rng.randrange(0, 10_000) for _ in range(rng.randrange(1, 5))),
    )


class TestScenarioSpec:
    def test_round_trip_identity_property(self):
        # Property test: Scenario -> dict -> json -> Scenario is the identity
        # for any JSON-shaped parameterization.
        rng = random.Random(42)
        for _ in range(200):
            scenario = _random_scenario(rng)
            assert Scenario.from_json(scenario.to_json()) == scenario
            assert Scenario.from_dict(
                json.loads(json.dumps(scenario.to_dict()))
            ) == scenario

    def test_tuples_normalize_to_lists(self):
        a = Scenario(
            graph=ComponentSpec("hnd", {"sizes": (1, 2)}),
            adversary=ComponentSpec("silent"),
            placement=ComponentSpec("random"),
            protocol=ComponentSpec("congest"),
        )
        b = Scenario(
            graph=ComponentSpec("hnd", {"sizes": [1, 2]}),
            adversary=ComponentSpec("silent"),
            placement=ComponentSpec("random"),
            protocol=ComponentSpec("congest"),
        )
        assert a == b

    @pytest.mark.parametrize("axis", ["graph", "adversary", "placement", "protocol"])
    def test_unknown_component_raises_with_options(self, axis):
        fields = {
            "graph": ComponentSpec("hnd", {"n": 16}),
            "adversary": ComponentSpec("silent"),
            "placement": ComponentSpec("random", {"count": 0}),
            "protocol": ComponentSpec("congest"),
        }
        fields[axis] = ComponentSpec("definitely-not-registered")
        scenario = Scenario(**fields)
        with pytest.raises(UnknownComponentError) as excinfo:
            scenario.validate()
        registry = all_registries()[axis]
        for name in registry.names():
            assert name in str(excinfo.value)

    def test_compile_one_config_per_seed(self):
        scenario = Scenario(
            graph=ComponentSpec("hnd", {"n": 16, "degree": 4}),
            adversary=ComponentSpec("silent"),
            placement=ComponentSpec("random", {"count": 0}),
            protocol=ComponentSpec("congest"),
            seeds=(3, 4, 5),
        )
        configs = scenario.compile()
        assert [config.task for config in configs] == [SCENARIO_TASK] * 3
        assert [config.params["seed"] for config in configs] == [3, 4, 5]
        # Cells with different seeds hash differently; the spec part agrees.
        assert len({config.key() for config in configs}) == 3
        assert all(
            config.params["spec"] == configs[0].params["spec"] for config in configs
        )

    def test_compile_rejects_non_finite_spec_params(self):
        scenario = Scenario(
            graph=ComponentSpec("hnd", {"n": 16}),
            adversary=ComponentSpec("silent"),
            placement=ComponentSpec("random", {"count": 0}),
            protocol=ComponentSpec("congest", {"gamma": float("nan")}),
        )
        with pytest.raises(ValueError, match="finite"):
            scenario.compile()

    def test_component_spec_requires_name(self):
        with pytest.raises(ValueError, match="missing 'name'"):
            ComponentSpec.from_dict({"params": {"n": 8}})

    def test_compiled_params_omit_display_name(self):
        # The cache content hash must not depend on the cosmetic name.
        def build(name):
            return Scenario(
                name=name,
                graph=ComponentSpec("hnd", {"n": 16, "degree": 4}),
                adversary=ComponentSpec("silent"),
                placement=ComponentSpec("random", {"count": 0}),
                protocol=ComponentSpec("congest"),
                seeds=(1,),
            ).compile()[0]

        assert build("a").key() == build("b").key()

    def test_scenario_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown scenario spec keys"):
            Scenario.from_dict(
                {
                    "graph": "hnd",
                    "adversary": "silent",
                    "placement": "random",
                    "protocol": "congest",
                    "typo_field": 1,
                }
            )


class TestLegacyDriverEquivalence:
    """A compiled scenario run equals the legacy driver path row-for-row."""

    @staticmethod
    def _legacy_e2_trial(
        *, n, degree, num_byz, behaviour, placement, gamma, round_budget, trial_seed
    ):
        """The pre-scenario E2 trial, verbatim (hand-wired dicts and all)."""
        from repro.adversary.placement import random_placement, spread_placement
        from repro.adversary.strategies import BeaconFloodAdversary, PathTamperAdversary
        from repro.analysis.accuracy import theorem2_check
        from repro.core.congest_counting import run_congest_counting
        from repro.graphs.hnd import hnd_random_regular_graph
        from repro.graphs.neighborhoods import ball_of_set
        from repro.simulator.byzantine import SilentAdversary

        behaviours = {
            "silent": SilentAdversary,
            "beacon-flood": BeaconFloodAdversary,
            "path-tamper": PathTamperAdversary,
        }
        placements = {"random": random_placement, "spread": spread_placement}
        params = CongestParameters(gamma=gamma, d=degree)
        graph = hnd_random_regular_graph(n, degree, seed=trial_seed)
        byz = placements[placement](graph, num_byz, seed=trial_seed)
        behaviour_cls = behaviours[behaviour]
        adversary = behaviour_cls() if behaviour == "silent" else behaviour_cls(params)
        contaminated = ball_of_set(graph, byz, 1)
        evaluation = {
            u for u in range(graph.n) if u not in contaminated and u not in byz
        }
        run = run_congest_counting(
            graph,
            byzantine=byz,
            adversary=adversary,
            params=params,
            seed=trial_seed,
            max_rounds=round_budget,
            evaluation_set=evaluation,
        )
        outcome = run.outcome
        check = theorem2_check(
            outcome, beta=0.25, num_byzantine=num_byz, round_budget=round_budget
        )
        return {
            "decided": outcome.decided_fraction(over_evaluation_set=False),
            "in_band": outcome.fraction_within_band(
                0.35, 1.6, over_evaluation_set=False
            ),
            "far_in_band": outcome.fraction_within_band(0.35, 1.6),
            "median": outcome.median_estimate(),
            "rounds": outcome.max_decision_round(),
            "small": outcome.small_message_fraction,
            "passed": 1.0 if check.passed else 0.0,
        }

    def test_e2_small_rows_match_legacy(self):
        from repro.experiments import e2_congest_theorem2
        from repro.runner import SweepRunner

        suite = e2_congest_theorem2.scenario_suite(sizes=(64,), trials=1, seed=0)
        flat = SweepRunner().run(suite.compile())
        mapping = {
            "decided": "decided_fraction_all",
            "in_band": "fraction_in_band_all",
            "far_in_band": "fraction_in_band",
            "median": "median_estimate",
            "rounds": "max_decision_round",
            "small": "small_message_fraction",
            "passed": "check_passed",
        }
        for row, metrics in zip(suite.rows, flat):
            (trial_seed,) = row.scenario.seeds
            legacy = self._legacy_e2_trial(
                n=row.static["n"],
                degree=8,
                num_byz=row.static["byzantine"],
                behaviour=row.static["behaviour"],
                placement="spread",
                gamma=0.5,
                round_budget=row.static["round_budget"],
                trial_seed=trial_seed,
            )
            assert {key: metrics[mapping[key]] for key in legacy} == legacy


class TestScenarioSuite:
    def test_suite_round_trips_through_json(self):
        from repro.experiments import e2_congest_theorem2

        suite = e2_congest_theorem2.scenario_suite(sizes=(64, 128), trials=2, seed=5)
        assert ScenarioSuite.from_json(suite.to_json()) == suite

    def test_committed_example_matches_driver_suite(self):
        # The committed spec IS the driver's small configuration; drifting
        # either breaks this lock.
        from repro.experiments import e2_congest_theorem2

        committed = json.loads((EXAMPLES / "scenario_e2_small.json").read_text())
        suite = e2_congest_theorem2.scenario_suite(sizes=(64, 128), trials=1, seed=0)
        assert committed == suite.to_dict()

    def test_unknown_metric_key_rejected(self):
        from repro.experiments import e3_benign

        suite = e3_benign.scenario_suite(sizes=(16,), trials=1)
        broken = ScenarioSuite(
            experiment=suite.experiment,
            claim=suite.claim,
            rows=[
                type(suite.rows[0])(
                    scenario=suite.rows[0].scenario,
                    static={},
                    columns={"decided": "decided_fractoin"},
                )
            ],
        )
        with pytest.raises(ValueError, match="unknown metric 'decided_fractoin'"):
            broken.run()

    def test_unknown_reducer_rejected(self):
        from repro.scenarios.suite import _reduce

        with pytest.raises(ValueError, match="unknown reducer"):
            _reduce({"metric": "x", "reduce": "mode"}, [1, 2])

    def test_reducers(self):
        from repro.scenarios.suite import _reduce

        assert _reduce("x", [1.0, None, 3.0]) == 2.0
        assert _reduce({"metric": "x", "reduce": "first"}, [7, 8]) == 7
        assert _reduce({"metric": "x", "reduce": "first"}, []) is None
        assert _reduce({"metric": "x", "reduce": "median"}, [1, 9, 2]) == 2
        assert _reduce({"metric": "x", "reduce": "max", "round": 1}, [1.26, 3.14]) == 3.1
        assert _reduce("x", [None, None]) is None


class TestScenarioCli:
    def test_scenario_run_reproduces_e2_golden_table(self, capsys):
        # Acceptance: the E2 small table regenerates from the JSON spec alone.
        code = main(["scenario", "run", str(EXAMPLES / "scenario_e2_small.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert out == (GOLDEN / "e2_small_table.txt").read_text()

    def test_committed_benign_example_runs(self, capsys):
        # The first-contact example in SCENARIOS.md must keep working.
        code = main(["scenario", "run", str(EXAMPLES / "scenario_benign_congest.json")])
        assert code == 0
        out = capsys.readouterr().out
        assert "benign-congest-n64" in out
        assert out.count("1.000") >= 3  # every seed decides and passes

    def test_scenario_run_malformed_json_exits_cleanly(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert main(["scenario", "run", str(path)]) == 2
        assert "invalid scenario spec" in capsys.readouterr().out

    def test_scenario_run_missing_component_name_exits_cleanly(self, capsys, tmp_path):
        path = tmp_path / "noname.json"
        path.write_text(
            json.dumps(
                {
                    "graph": {"params": {"n": 8}},
                    "adversary": "silent",
                    "placement": "random",
                    "protocol": "congest",
                }
            )
        )
        assert main(["scenario", "run", str(path)]) == 2
        assert "missing 'name'" in capsys.readouterr().out

    def test_scenario_run_single_scenario_spec(self, capsys, tmp_path):
        spec = {
            "name": "tiny",
            "graph": {"name": "hnd", "params": {"n": 32, "degree": 4}},
            "adversary": "silent",
            "placement": {"name": "random", "params": {"count": 0}},
            "protocol": {"name": "congest", "params": {"d": 4}},
            "seeds": [0, 1],
        }
        path = tmp_path / "tiny.json"
        path.write_text(json.dumps(spec))
        assert main(["scenario", "run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "tiny" in out and "decided_fraction" in out

    def test_scenario_run_caches_artifacts(self, capsys, tmp_path):
        spec_path = tmp_path / "tiny.json"
        spec_path.write_text(
            json.dumps(
                {
                    "graph": {"name": "hnd", "params": {"n": 32, "degree": 4}},
                    "adversary": "silent",
                    "placement": {"name": "random", "params": {"count": 0}},
                    "protocol": {"name": "congest", "params": {"d": 4}},
                    "seeds": [0],
                }
            )
        )
        cache = tmp_path / "artifacts"
        assert main(["scenario", "run", str(spec_path), "--artifact-dir", str(cache)]) == 0
        assert "0 cached, 1 executed" in capsys.readouterr().out
        assert main(["scenario", "run", str(spec_path), "--artifact-dir", str(cache)]) == 0
        assert "1 cached, 0 executed" in capsys.readouterr().out

    def test_scenario_run_invalid_spec_exits_cleanly(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {
                    "graph": "nope",
                    "adversary": "silent",
                    "placement": "random",
                    "protocol": "congest",
                }
            )
        )
        assert main(["scenario", "run", str(path)]) == 2
        out = capsys.readouterr().out
        assert "invalid scenario spec" in out and "hnd" in out

    def test_scenario_list_enumerates_registries(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for registry in all_registries().values():
            for name in registry.names():
                assert name in out

    def test_help_epilog_lists_components(self):
        from repro.cli import build_parser

        help_text = build_parser().format_help()
        assert "registered scenario components" in help_text
        assert "beacon-flood" in help_text and "hnd" in help_text


class TestMaterialize:
    def test_cli_equivalent_scenario_runs(self):
        scenario = Scenario(
            graph=ComponentSpec("hnd", {"n": 64, "degree": 8}),
            adversary=ComponentSpec("beacon-flood"),
            placement=ComponentSpec("spread", {"count": 2}),
            protocol=ComponentSpec("congest", {"gamma": 0.5, "max_rounds": 400}),
            seeds=(1,),
        )
        cell = materialize(scenario, 1)
        assert cell.graph.n == 64
        assert len(cell.byzantine) == 2
        assert cell.metrics["decided_fraction"] > 0.0
        assert cell.metrics["check_passed"] is None

    def test_unknown_evaluation_kind_rejected(self):
        scenario = Scenario(
            graph=ComponentSpec("hnd", {"n": 16, "degree": 4}),
            adversary=ComponentSpec("silent"),
            placement=ComponentSpec("random", {"count": 0}),
            protocol=ComponentSpec("congest", {"d": 4}),
            params={"evaluation": {"kind": "mystery"}},
        )
        with pytest.raises(ValueError, match="unknown evaluation kind"):
            materialize(scenario, 0)

    def test_unknown_check_rejected(self):
        scenario = Scenario(
            graph=ComponentSpec("hnd", {"n": 16, "degree": 4}),
            adversary=ComponentSpec("silent"),
            placement=ComponentSpec("random", {"count": 0}),
            protocol=ComponentSpec("congest", {"d": 4}),
            params={"check": {"name": "theorem99"}},
        )
        with pytest.raises(ValueError, match="unknown check"):
            materialize(scenario, 0)
