"""End-to-end integration tests phrased as the paper's guarantees."""

import math

import pytest

from repro.adversary.placement import random_placement, spread_placement
from repro.adversary.strategies import BeaconFloodAdversary, FakeTopologyAdversary
from repro.analysis.accuracy import corollary1_check, theorem1_check, theorem2_check
from repro.core.congest_counting import run_congest_counting
from repro.core.local_counting import run_local_counting
from repro.core.parameters import CongestParameters, LocalParameters
from repro.graphs.expansion import good_set
from repro.graphs.hnd import configuration_model_graph, hnd_random_regular_graph
from repro.graphs.expanders import margulis_torus_graph


class TestTheorem1EndToEnd:
    def test_hnd_expander_with_adversarial_byzantine(self):
        graph = hnd_random_regular_graph(256, 8, seed=71)
        params = LocalParameters(gamma=0.7, max_degree=8)
        byzantine = random_placement(graph, params.byzantine_bound(256), seed=71)
        evaluation = good_set(graph, byzantine, params.gamma)
        run = run_local_counting(
            graph, byzantine=byzantine, adversary=FakeTopologyAdversary(),
            params=params, seed=71, evaluation_set=evaluation,
        )
        assert theorem1_check(run.outcome).passed

    def test_margulis_expander_benign(self):
        graph = margulis_torus_graph(12)  # 144 nodes, explicit expander
        run = run_local_counting(graph, seed=0)
        report = theorem1_check(run.outcome, min_fraction=0.95)
        assert report.passed


class TestTheorem2EndToEnd:
    def test_hnd_with_beacon_flooding(self):
        params = CongestParameters(gamma=0.5, d=8)
        graph = hnd_random_regular_graph(256, 8, seed=72)
        byzantine = spread_placement(graph, 4, seed=72)
        budget = params.rounds_through_phase(int(math.ceil(math.log(256))) + 1)
        # Theorem 2's guarantee is for the nodes far from every Byzantine node
        # (GoodTL); honest nodes sharing an edge with a Byzantine flooder can
        # legitimately be kept undecided, and they are the beta fraction.
        from repro.graphs.neighborhoods import ball_of_set

        contaminated = ball_of_set(graph, byzantine, 1)
        evaluation = {u for u in range(graph.n) if u not in contaminated}
        run = run_congest_counting(
            graph, byzantine=byzantine, adversary=BeaconFloodAdversary(params),
            params=params, seed=72, max_rounds=budget, evaluation_set=evaluation,
        )
        report = theorem2_check(
            run.outcome, beta=0.25, num_byzantine=4, round_budget=budget
        )
        assert report.passed

    def test_rounds_grow_with_byzantine_budget(self):
        # O(B log^2 n): more Byzantine flooders should not shrink the decision
        # time, and stay within the budget.
        params = CongestParameters(d=8)
        graph = hnd_random_regular_graph(128, 8, seed=73)
        budget = params.rounds_through_phase(int(math.ceil(math.log(128))) + 1)
        rounds = {}
        for num_byz in (1, 4):
            byz = spread_placement(graph, num_byz, seed=73)
            run = run_congest_counting(
                graph, byzantine=byz, adversary=BeaconFloodAdversary(params),
                params=params, seed=73, max_rounds=budget,
            )
            rounds[num_byz] = run.outcome.max_decision_round()
        assert rounds[4] >= rounds[1]
        assert rounds[4] <= budget

    def test_configuration_model_also_works(self):
        # "Almost all d-regular graphs": the configuration model is the other
        # distribution the contiguity argument covers.
        params = CongestParameters(d=8)
        graph = configuration_model_graph(128, 8, seed=74)
        run = run_congest_counting(graph, params=params, seed=74)
        assert corollary1_check(run.outcome).passed


class TestCorollary1EndToEnd:
    def test_benign_termination_and_agreement(self):
        params = CongestParameters(d=8)
        graph = hnd_random_regular_graph(128, 8, seed=75)
        run = run_congest_counting(
            graph, params=params, seed=75, stop_when_all_decided=False
        )
        assert corollary1_check(run.outcome).passed
        # Termination: the network is quiescent at the end of the run.
        assert run.result.metrics.messages_per_round[-1] == 0


class TestCrossAlgorithmConsistency:
    def test_both_algorithms_land_in_overlapping_bands(self):
        graph = hnd_random_regular_graph(256, 8, seed=76)
        local = run_local_counting(graph, seed=76)
        congest = run_congest_counting(graph, params=CongestParameters(d=8), seed=76)
        log_n = math.log(graph.n)
        for outcome in (local.outcome, congest.outcome):
            median = outcome.median_estimate()
            assert 0.35 * log_n <= median <= 1.6 * log_n
