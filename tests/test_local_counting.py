"""Tests for Algorithm 1 (deterministic LOCAL counting)."""

import math

import pytest

from repro.adversary.strategies import FakeTopologyAdversary, InconsistentTopologyAdversary
from repro.core.local_counting import LocalView, run_local_counting
from repro.core.parameters import LocalParameters
from repro.graphs.expansion import good_set
from repro.graphs.generators import cycle_graph
from repro.graphs.hnd import hnd_random_regular_graph
from repro.simulator.byzantine import SilentAdversary


class TestLocalView:
    def _view(self):
        # Owner 100 with neighbors 101, 102.
        return LocalView(100, [101, 102])

    def test_initial_state(self):
        view = self._view()
        assert view.vertices == {100, 101, 102}
        assert view.edge_sets[100] == frozenset({101, 102})

    def test_integrate_new_edge_set(self):
        view = self._view()
        bad, new_edges, new_vertices = view.integrate(
            [(101, (100, 103))], [], max_degree=4
        )
        assert not bad
        assert (101, (100, 103)) in new_edges
        assert 103 in new_vertices
        assert view.edge_sets[101] == frozenset({100, 103})

    def test_integrate_duplicate_identical_is_fine(self):
        view = self._view()
        view.integrate([(101, (100, 103))], [], max_degree=4)
        bad, new_edges, _ = view.integrate([(101, (103, 100))], [], max_degree=4)
        assert not bad and new_edges == []

    def test_integrate_conflicting_edge_sets_flagged(self):
        view = self._view()
        view.integrate([(101, (100, 103))], [], max_degree=4)
        bad, _, _ = view.integrate([(101, (100, 104))], [], max_degree=4)
        assert bad

    def test_integrate_degree_violation_flagged(self):
        view = self._view()
        bad, _, _ = view.integrate([(101, (1, 2, 3, 4, 5))], [], max_degree=4)
        assert bad

    def test_integrate_self_loop_flagged(self):
        view = self._view()
        bad, _, _ = view.integrate([(101, (101, 100))], [], max_degree=4)
        assert bad

    def test_integrate_new_frontier_vertices(self):
        view = self._view()
        bad, _, new_vertices = view.integrate([], [200, 201], max_degree=4)
        assert not bad
        assert set(new_vertices) == {200, 201}

    def test_layer_prefixes_are_nested(self):
        view = self._view()
        view.integrate([(101, (100, 103)), (102, (100, 104))], [], max_degree=4)
        adj = view.adjacency()
        prefixes = view.layer_prefixes(adj)
        assert prefixes[0] == {100}
        for a, b in zip(prefixes, prefixes[1:]):
            assert a < b

    def test_interior_set_grows_with_settlement(self):
        view = self._view()
        assert view.interior_set() == set()  # neighbors' edges unknown
        view.integrate([(101, (100, 103)), (102, (100, 104))], [], max_degree=4)
        assert view.interior_set() == {100}

    def test_expansion_of(self):
        view = self._view()
        adj = view.adjacency()
        assert view.expansion_of(adj, {100}) == pytest.approx(2.0)
        assert view.expansion_of(adj, set()) == math.inf


class TestBenignRuns:
    def test_all_nodes_decide(self, benign_local_run):
        assert benign_local_run.outcome.decided_fraction() == 1.0

    def test_estimates_track_diameter(self, small_hnd, benign_local_run):
        diameter = small_hnd.diameter()
        low, high = benign_local_run.outcome.estimate_range()
        assert low >= 1
        assert high <= diameter + 1

    def test_rounds_logarithmic(self, small_hnd, benign_local_run):
        assert benign_local_run.outcome.max_decision_round() <= 4 * math.log(small_hnd.n)

    def test_deterministic_outcome(self, small_hnd, local_params):
        a = run_local_counting(small_hnd, params=local_params, seed=5)
        b = run_local_counting(small_hnd, params=local_params, seed=9)
        # The algorithm itself is deterministic; different seeds only matter
        # for adversary randomness, absent here.
        assert a.outcome.estimates() == b.outcome.estimates()

    def test_works_on_margulis_expander(self, small_margulis):
        run = run_local_counting(small_margulis, seed=0)
        assert run.outcome.decided_fraction() == 1.0
        assert run.outcome.median_estimate() >= 2

    def test_works_on_hypercube(self, small_hypercube):
        run = run_local_counting(small_hypercube, seed=0)
        assert run.outcome.decided_fraction() == 1.0

    def test_estimates_grow_with_n(self, local_params):
        # Decisions track the diameter, which only increases by one every time
        # n grows by a factor of ~d-1, so compare sizes a factor 8 apart.
        medians = []
        for n in (64, 512):
            graph = hnd_random_regular_graph(n, 8, seed=11)
            run = run_local_counting(graph, params=local_params, seed=1)
            medians.append(run.outcome.median_estimate())
        assert medians[1] > medians[0]

    def test_message_sizes_not_small(self, benign_local_run, small_hnd):
        # Algorithm 1 is a LOCAL algorithm: it ships whole neighborhoods.
        assert benign_local_run.outcome.small_message_fraction < 0.5


class TestByzantineRuns:
    @pytest.fixture(scope="class")
    def attacked_setup(self):
        graph = hnd_random_regular_graph(128, 8, seed=21)
        byzantine = {3, 77}
        evaluation = good_set(graph, byzantine, gamma=0.7)
        return graph, byzantine, evaluation

    def test_silent_adversary_good_nodes_in_band(self, attacked_setup, local_params):
        graph, byz, evaluation = attacked_setup
        run = run_local_counting(
            graph, byzantine=byz, adversary=SilentAdversary(), params=local_params,
            seed=0, evaluation_set=evaluation,
        )
        assert run.outcome.decided_fraction() == 1.0
        assert run.outcome.fraction_within_band(0.35, 1.6) >= 0.9

    def test_fake_topology_adversary_bounded_estimates(self, attacked_setup, local_params):
        graph, byz, evaluation = attacked_setup
        run = run_local_counting(
            graph, byzantine=byz, adversary=FakeTopologyAdversary(), params=local_params,
            seed=0, evaluation_set=evaluation,
        )
        assert run.outcome.decided_fraction() == 1.0
        _, high = run.outcome.estimate_range()
        assert high <= 3 * math.log(graph.n)

    def test_inconsistent_adversary_detected(self, attacked_setup, local_params):
        graph, byz, evaluation = attacked_setup
        run = run_local_counting(
            graph, byzantine=byz, adversary=InconsistentTopologyAdversary(),
            params=local_params, seed=0, evaluation_set=evaluation,
        )
        assert run.outcome.decided_fraction() == 1.0
        assert run.outcome.max_decision_round() <= 4 * math.log(graph.n)

    def test_nodes_adjacent_to_silent_byzantine_decide_immediately(self, local_params):
        graph = hnd_random_regular_graph(64, 8, seed=30)
        byzantine = {0}
        run = run_local_counting(
            graph, byzantine=byzantine, adversary=SilentAdversary(),
            params=local_params, seed=0,
        )
        for v in graph.neighbors(0):
            record = run.outcome.records[v]
            assert record.decided and record.estimate == 1.0

    def test_theorem1_lower_bound_for_good_nodes(self, attacked_setup, local_params):
        graph, byz, evaluation = attacked_setup
        run = run_local_counting(
            graph, byzantine=byz, adversary=FakeTopologyAdversary(), params=local_params,
            seed=0, evaluation_set=evaluation,
        )
        lower = local_params.lower_decision_bound(graph.n)
        for u in evaluation:
            record = run.outcome.records[u]
            assert record.estimate is None or record.estimate >= max(1, lower)


class TestExhaustiveCheckCrossValidation:
    def test_exhaustive_matches_practical_on_tiny_graph(self):
        graph = cycle_graph(8)
        practical = run_local_counting(
            graph, params=LocalParameters(gamma=0.5, max_degree=2, alpha_prime=0.2), seed=0
        )
        exhaustive = run_local_counting(
            graph,
            params=LocalParameters(
                gamma=0.5, max_degree=2, alpha_prime=0.2, exhaustive_subset_check=True
            ),
            seed=0,
        )
        assert exhaustive.outcome.decided_fraction() == 1.0
        # The exhaustive family can only trigger earlier (it includes more sets).
        for u in range(graph.n):
            assert (
                exhaustive.outcome.records[u].estimate
                <= practical.outcome.records[u].estimate
            )
