"""Tests for Byzantine placement strategies and behaviour strategies."""

import pytest

from repro.adversary.placement import (
    clustered_placement,
    cut_placement,
    high_degree_placement,
    random_placement,
    spread_placement,
)
from repro.adversary.strategies import (
    BeaconFloodAdversary,
    CombinedAdversary,
    ContinueFloodAdversary,
    ContinueSuppressAdversary,
    FakeTopologyAdversary,
    InconsistentTopologyAdversary,
    PathTamperAdversary,
    ValueFakingAdversary,
)
from repro.core.parameters import CongestParameters
from repro.graphs.generators import barbell_graph, star_graph
from repro.graphs.hnd import hnd_random_regular_graph
from repro.graphs.neighborhoods import distances_from
from repro.simulator.byzantine import SilentAdversary


@pytest.fixture(scope="module")
def graph():
    return hnd_random_regular_graph(64, 8, seed=17)


class TestPlacements:
    @pytest.mark.parametrize(
        "placement",
        [random_placement, clustered_placement, cut_placement, high_degree_placement, spread_placement],
    )
    def test_returns_requested_count(self, graph, placement):
        chosen = placement(graph, 5, seed=1)
        assert len(chosen) == 5
        assert all(0 <= u < graph.n for u in chosen)

    @pytest.mark.parametrize(
        "placement",
        [random_placement, clustered_placement, cut_placement, spread_placement],
    )
    def test_zero_budget(self, graph, placement):
        assert placement(graph, 0, seed=1) == set()

    def test_count_capped_at_n(self, graph):
        assert len(random_placement(graph, 10_000, seed=0)) == graph.n

    def test_negative_count_rejected(self, graph):
        with pytest.raises(ValueError):
            random_placement(graph, -1)

    def test_random_placement_deterministic(self, graph):
        assert random_placement(graph, 6, seed=3) == random_placement(graph, 6, seed=3)

    def test_clustered_placement_is_connected_ball(self, graph):
        chosen = clustered_placement(graph, 9, seed=2)
        # All chosen nodes lie within a small radius of each other.
        some = next(iter(chosen))
        dist = distances_from(graph, some)
        assert all(dist[u] <= 3 for u in chosen)

    def test_spread_placement_spreads(self, graph):
        chosen = spread_placement(graph, 4, seed=2)
        nodes = sorted(chosen)
        for i, u in enumerate(nodes):
            dist = distances_from(graph, u)
            for v in nodes[i + 1:]:
                assert dist[v] >= 2

    def test_high_degree_placement_prefers_hub(self):
        g = star_graph(10)
        assert 0 in high_degree_placement(g, 1, seed=0)

    def test_cut_placement_on_barbell_hits_bridge_region(self):
        g = barbell_graph(10, 2)
        chosen = cut_placement(g, 3, seed=0)
        assert len(chosen) == 3


class _FakeProtocol:
    decided = False
    estimate = None


def _make_view(graph, byzantine, round_number=1, params=None):
    import random as _random

    from repro.simulator.byzantine import AdversaryView

    return AdversaryView(
        round=round_number,
        graph=graph,
        byzantine=frozenset(byzantine),
        honest_protocols={u: _FakeProtocol() for u in range(graph.n) if u not in byzantine},
        honest_outboxes={},
        byzantine_inboxes={b: [] for b in byzantine},
        rng=_random.Random(0),
    )


class TestBehaviours:
    def test_silent_and_suppress_send_nothing(self, graph):
        view = _make_view(graph, {0})
        for adversary in (SilentAdversary(), ContinueSuppressAdversary()):
            adversary.setup(graph, frozenset({0}), view.rng)
            assert adversary.act(view) == {}

    def test_fake_topology_round0_announces_fake_roots(self, graph):
        adversary = FakeTopologyAdversary()
        view = _make_view(graph, {0}, round_number=0)
        adversary.setup(graph, frozenset({0}), view.rng)
        out = adversary.act(view)
        assert set(out) == {0}
        messages = next(iter(out[0].values()))
        edge_sets, _ = messages[0].payload
        claimed_ids = {node_id for node_id, _ in edge_sets}
        assert graph.node_id(0) in claimed_ids

    def test_fake_topology_grows_but_bounded_per_round(self, graph):
        adversary = FakeTopologyAdversary(max_new_per_round=8)
        view0 = _make_view(graph, {0}, round_number=0)
        adversary.setup(graph, frozenset({0}), view0.rng)
        adversary.act(view0)
        out = adversary.act(_make_view(graph, {0}, round_number=1))
        messages = next(iter(out[0].values()))
        edge_sets, _ = messages[0].payload
        new_ids = sum(len(edges) for _, edges in edge_sets)
        assert 0 < new_ids <= 8 * (graph.max_degree() - 1)

    def test_fake_topology_max_depth_stops_growth(self, graph):
        adversary = FakeTopologyAdversary(max_depth=1)
        view0 = _make_view(graph, {0}, round_number=0)
        adversary.setup(graph, frozenset({0}), view0.rng)
        adversary.act(view0)
        adversary.act(_make_view(graph, {0}, round_number=1))
        out = adversary.act(_make_view(graph, {0}, round_number=2))
        messages = next(iter(out[0].values()))
        edge_sets, _ = messages[0].payload
        assert edge_sets == ()

    def test_inconsistent_topology_targets_honest_nodes(self, graph):
        adversary = InconsistentTopologyAdversary(claims_per_round=3)
        view = _make_view(graph, {0})
        adversary.setup(graph, frozenset({0}), view.rng)
        out = adversary.act(view)
        messages = next(iter(out[0].values()))
        edge_sets, _ = messages[0].payload
        assert len(edge_sets) == 3
        honest_ids = {graph.node_id(u) for u in range(graph.n) if u != 0}
        assert all(node_id in honest_ids for node_id, _ in edge_sets)

    def test_beacon_flood_only_in_beacon_window(self, graph):
        params = CongestParameters(d=8)
        adversary = BeaconFloodAdversary(params)
        adversary.setup(graph, frozenset({0}), _make_view(graph, {0}).rng)
        in_window = adversary.act(_make_view(graph, {0}, round_number=1, params=params))
        assert in_window and all(
            m.kind == "beacon" for msgs in in_window[0].values() for m in msgs
        )
        # Step i+3 of phase 2 is round 6: outside the beacon window.
        outside = adversary.act(_make_view(graph, {0}, round_number=6, params=params))
        assert outside == {}

    def test_continue_flood_only_in_continue_window(self, graph):
        params = CongestParameters(d=8)
        adversary = ContinueFloodAdversary(params)
        adversary.setup(graph, frozenset({0}), _make_view(graph, {0}).rng)
        assert adversary.act(_make_view(graph, {0}, round_number=1)) == {}
        out = adversary.act(_make_view(graph, {0}, round_number=6))
        assert out and all(
            m.kind == "continue" for msgs in out[0].values() for m in msgs
        )

    def test_path_tamper_sends_something_every_round(self, graph):
        params = CongestParameters(d=8)
        adversary = PathTamperAdversary(params)
        adversary.setup(graph, frozenset({0}), _make_view(graph, {0}).rng)
        for round_number in (1, 3, 6, 8):
            out = adversary.act(_make_view(graph, {0}, round_number=round_number))
            assert out

    def test_value_faking_modes(self, graph):
        view = _make_view(graph, {0})
        inflate = ValueFakingAdversary(mode="inflate", magnitude=123.0)
        inflate.setup(graph, frozenset({0}), view.rng)
        out = inflate.act(view)
        assert next(iter(out[0].values()))[0].payload == 123.0
        deflate = ValueFakingAdversary(mode="deflate")
        deflate.setup(graph, frozenset({0}), view.rng)
        out = deflate.act(view)
        assert next(iter(out[0].values()))[0].payload == 0.0

    def test_value_faking_invalid_mode(self):
        with pytest.raises(ValueError):
            ValueFakingAdversary(mode="weird")

    def test_combined_adversary_merges(self, graph):
        params = CongestParameters(d=8)
        combined = CombinedAdversary(
            [BeaconFloodAdversary(params), ValueFakingAdversary()]
        )
        view = _make_view(graph, {0})
        combined.setup(graph, frozenset({0}), view.rng)
        out = combined.act(view)
        kinds = {m.kind for msgs in out[0].values() for m in msgs}
        assert kinds == {"beacon", "estimate"}

    def test_combined_adversary_requires_strategies(self):
        with pytest.raises(ValueError):
            CombinedAdversary([])
