"""Tests for the Sweep Hub subsystem (src/repro/runner/hub/).

Covers the multi-tenant acceptance criteria of the hub: concurrent sweeps
sharing one hub and artifact root with results identical to serial,
fair-share dispatch and priorities, cross-sweep dedupe through the shared
store, graceful worker drain (the ``abandon`` path), ``events_dropped``
accounting in sweep stats and journals, the ResultsDB query layer, the
``sweeps`` / ``runs`` / ``hub`` CLI, and the stdlib dashboard.

Workers here run as in-thread :class:`WorkerDaemon` instances (the
subprocess fleet is exercised by ``tests/test_distributed.py`` and the
``make hub-demo`` gate); tasks live in :mod:`repro.runner.testing` so they
resolve anywhere.
"""

import contextlib
import json
import threading
import urllib.request

import pytest

import repro.runner.testing  # noqa: F401  (registers testing.* sweep tasks)
from repro.cli import main
from repro.runner import (
    ArtifactStore,
    Broker,
    DashboardServer,
    DistributedBackend,
    ResultsDB,
    SweepConfig,
    SweepHub,
    SweepRunner,
    WorkerDaemon,
)
from repro.runner.hub.client import query_hub_status, submit_to_hub


def _items(values, *, sleep_s=0.0, start=0):
    """Hub work items (index, task, params, module) for ``testing.sleep_echo``."""
    params = lambda v: (  # noqa: E731
        {"value": v, "sleep_s": sleep_s} if sleep_s else {"value": v}
    )
    return [
        (start + offset, "testing.sleep_echo", params(value), "repro.runner.testing")
        for offset, value in enumerate(values)
    ]


def _configs(values):
    return [SweepConfig("testing.sleep_echo", {"value": v}) for v in values]


@contextlib.contextmanager
def running_hub(root=None, **kwargs):
    """A started :class:`SweepHub` (with a store at ``root`` when given)."""
    store = ArtifactStore(root) if root is not None else None
    hub = SweepHub(store=store, **kwargs)
    address = hub.start()
    try:
        yield hub, address
    finally:
        hub.stop()


@contextlib.contextmanager
def running_worker(address, **kwargs):
    """An in-thread persistent :class:`WorkerDaemon` attached to ``address``."""
    daemon = WorkerDaemon(address[0], address[1], **kwargs)
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    try:
        yield daemon
    finally:
        daemon.stop()
        thread.join(timeout=20)
        assert not thread.is_alive(), "worker daemon failed to stop"


# --------------------------------------------------------------------------- #
# Submissions: equivalence, concurrency, dedupe, fair share
# --------------------------------------------------------------------------- #
class TestHubSubmissions:
    def test_single_submission_matches_serial(self, tmp_path):
        serial = SweepRunner().run(_configs(range(4)))
        with running_hub(tmp_path) as (_hub, address):
            with running_worker(address):
                completed = list(submit_to_hub(address, _items(range(4))))
        results = [None] * 4
        for index, result, _meta in completed:
            results[index] = result
        assert [json.loads(json.dumps(r)) for r in results] == serial

    def test_two_concurrent_connect_sweeps_identical_to_serial(self, tmp_path):
        """Two concurrent ``--connect`` sweeps against one hub + artifact
        root: rows identical to serial, one journal per sweep at the shared
        root, both complete."""
        values_a, values_b = list(range(0, 5)), list(range(10, 15))
        serial_a = SweepRunner().run(_configs(values_a))
        serial_b = SweepRunner().run(_configs(values_b))
        rows = {}

        def run_connect(key, values, address):
            runner = SweepRunner(
                backend=DistributedBackend(connect=address, quiet=True),
                artifact_dir=tmp_path,
            )
            rows[key] = runner.run(_configs(values))

        with running_hub(tmp_path) as (hub, address):
            with running_worker(address, procs=2):
                threads = [
                    threading.Thread(target=run_connect, args=("a", values_a, address)),
                    threading.Thread(target=run_connect, args=("b", values_b, address)),
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60)
                    assert not thread.is_alive(), "connect sweep wedged"
            assert len(hub.snapshot()["sweeps"]) == 2
        assert rows["a"] == serial_a
        assert rows["b"] == serial_b
        journals = sorted(tmp_path.glob("sweep-*.journal.json"))
        assert len(journals) == 2
        for path in journals:
            document = json.loads(path.read_text(encoding="utf-8"))
            assert document["complete"] is True
            assert document["events_dropped"] == 0

    def test_cross_sweep_dedupe_through_shared_store(self, tmp_path):
        """A second sweep overlapping an earlier one on the same hub hits
        the shared artifact store at dispatch time."""
        with running_hub(tmp_path) as (hub, address):
            with running_worker(address):
                first = submit_to_hub(address, _items(range(4)))
                assert len(list(first)) == 4
                assert first.stats["completed"] == 4
                second = submit_to_hub(address, _items(range(2, 6)))
                completed = list(second)
        results = [None] * 4
        cache_hits = 0
        for index, result, meta in completed:
            results[index] = result
            cache_hits += meta is None
        assert results == [{"value": v} for v in range(2, 6)]
        assert cache_hits == 2  # values 2 and 3 came from the store
        assert second.stats["cached"] == 2
        assert second.stats["completed"] == 2
        assert "events_dropped" in second.stats
        assert hub.stats["cache_hits"] >= 2

    def test_equal_priority_sweeps_are_granted_fair_share(self, tmp_path):
        """With one worker and chunk_size=1, two equal-priority sweeps must
        alternate lease grants (least-recently-granted wins)."""
        with running_hub(tmp_path, chunk_size=1) as (hub, address):
            sweep_a = hub.submit(_items(range(3)), name="a")
            sweep_b = hub.submit(_items(range(10, 13)), name="b")
            with running_worker(address):
                assert len(list(sweep_a.results())) == 3
                assert len(list(sweep_b.results())) == 3
            grants = [
                event["sweep"]
                for event in hub.events
                if event["event"] == "lease-grant"
            ]
        assert len(grants) == 6
        # Strict alternation while both queues have pending work.
        assert grants[:4] in (["s0", "s1"] * 2, ["s1", "s0"] * 2)

    def test_high_priority_sweep_preempts_dispatch(self, tmp_path):
        """A higher-priority sweep submitted to the same hub is granted
        before an earlier lower-priority one."""
        with running_hub(tmp_path, chunk_size=1) as (hub, address):
            low = hub.submit(_items(range(3)), name="low", priority=0)
            high = hub.submit(_items(range(10, 13)), name="high", priority=5)
            with running_worker(address):
                assert len(list(high.results())) == 3
                assert len(list(low.results())) == 3
            grants = [
                event["sweep"]
                for event in hub.events
                if event["event"] == "lease-grant"
            ]
        assert grants[:3] == [high.key] * 3
        assert grants[3:] == [low.key] * 3

    def test_status_query_reports_sweeps_and_workers(self, tmp_path):
        with running_hub(tmp_path) as (_hub, address):
            with running_worker(address, worker_id="w-test"):
                submission = submit_to_hub(address, _items(range(2)), name="probe")
                assert len(list(submission)) == 2
                status = query_hub_status(address)
        assert status["stats"]["completed"] == 2
        assert "events_dropped" in status
        sweeps = {entry["name"]: entry for entry in status["sweeps"]}
        assert sweeps["probe"]["status"] == "done"
        assert any(worker["worker"] == "w-test" for worker in status["workers"])


# --------------------------------------------------------------------------- #
# Graceful worker shutdown (satellite: SIGTERM drain)
# --------------------------------------------------------------------------- #
class TestGracefulShutdown:
    def test_request_shutdown_abandons_lease_remainder_uncharged(self):
        """A draining worker finishes its current task, abandons the rest
        of the lease (front-requeued, no retry charged), and a replacement
        finishes the sweep."""
        items = _items(range(6), sleep_s=0.2)
        broker = Broker(items, lease_ttl_s=30.0, chunk_size=6)
        address = broker.start()
        completed = []
        try:
            daemon = WorkerDaemon(
                address[0], address[1], procs=1, lease_capacity=6
            )
            thread = threading.Thread(target=daemon.run, daemon=True)
            thread.start()
            results_iter = broker.results()
            completed.append(next(results_iter))
            daemon.request_shutdown()
            thread.join(timeout=20)
            assert not thread.is_alive(), "draining worker never exited"
            with running_worker(address, exit_when_drained=True):
                completed.extend(results_iter)
        finally:
            broker.stop()
        assert broker.stats["abandoned"] >= 1
        assert broker.stats["retries"] == 0  # abandonment is uncharged
        kinds = [event["event"] for event in broker.events]
        assert "abandon" in kinds
        results = [None] * 6
        for index, result, _meta in completed:
            results[index] = result
        assert results == [{"value": v} for v in range(6)]

    def test_lease_capacity_validation(self):
        with pytest.raises(ValueError, match="lease_capacity"):
            WorkerDaemon("127.0.0.1", 1, lease_capacity=0)


# --------------------------------------------------------------------------- #
# events_dropped accounting (satellite)
# --------------------------------------------------------------------------- #
class TestEventsDropped:
    def test_dropped_events_counted_in_stats_and_journal(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr("repro.runner.distributed.broker.EVENTS_CAP", 2)
        backend = DistributedBackend(spawn_workers=1, quiet=True)
        runner = SweepRunner(backend=backend, artifact_dir=tmp_path)
        assert runner.run(_configs(range(3))) == [{"value": v} for v in range(3)]
        assert backend.last_stats["events_dropped"] >= 1
        (journal,) = tmp_path.glob("sweep-*.journal.json")
        document = json.loads(journal.read_text(encoding="utf-8"))
        assert document["events_dropped"] == backend.last_stats["events_dropped"]

    def test_snapshot_exposes_events_dropped(self, tmp_path):
        with running_hub(tmp_path) as (hub, _address):
            assert hub.snapshot()["events_dropped"] == 0


# --------------------------------------------------------------------------- #
# ResultsDB and the sweeps / runs CLI
# --------------------------------------------------------------------------- #
class TestResultsDB:
    @pytest.fixture()
    def populated_root(self, tmp_path):
        runner = SweepRunner(artifact_dir=tmp_path)
        runner.run(_configs(range(3)))
        return tmp_path

    def test_sweep_and_run_records(self, populated_root):
        db = ResultsDB(populated_root)
        (sweep,) = db.sweep_records()
        assert sweep["status"] == "done"
        assert sweep["done"] == sweep["total"] == 3
        assert sweep["complete"] is True
        runs = db.run_records(task="testing.sleep_echo")
        assert len(runs) == 3
        assert {run["result"]["value"] for run in runs} == {0, 1, 2}
        for run in runs:
            assert run["sweeps"] == [sweep["sweep"]]

    def test_find_and_diff(self, populated_root):
        db = ResultsDB(populated_root)
        runs = db.run_records(task="testing.sleep_echo")
        ref_a = f"testing.sleep_echo/{runs[0]['key']}"
        ref_b = f"testing.sleep_echo/{runs[1]['key']}"
        assert db.find(ref_a)["key"] == runs[0]["key"]
        with pytest.raises(KeyError):
            db.find("testing.sleep_echo/nope")
        delta = db.diff(ref_a, ref_b)
        assert "value" in delta["params"]
        assert "value" in delta["result"]

    def test_sweeps_and_runs_cli(self, populated_root, capsys):
        root = str(populated_root)
        assert main(["sweeps", "--artifact-dir", root]) == 0
        assert "done" in capsys.readouterr().out
        assert main(["runs", "list", "--artifact-dir", root]) == 0
        listing = capsys.readouterr().out
        assert "testing.sleep_echo" in listing
        key = ResultsDB(populated_root).run_records()[0]["key"]
        ref = f"testing.sleep_echo/{key}"
        assert main(["runs", "show", ref, "--artifact-dir", root]) == 0
        assert "value" in capsys.readouterr().out
        assert main(["runs", "show", "testing.sleep_echo/nope", "--artifact-dir", root]) == 2
        capsys.readouterr()


# --------------------------------------------------------------------------- #
# Dashboard (stdlib http.server)
# --------------------------------------------------------------------------- #
class TestDashboard:
    def test_pages_render_over_http(self, tmp_path):
        runner = SweepRunner(artifact_dir=tmp_path)
        runner.run(_configs(range(2)))
        dashboard = DashboardServer(artifact_dir=tmp_path)
        host, port = dashboard.start()
        try:
            for route in ("/", "/runs"):
                with urllib.request.urlopen(
                    f"http://{host}:{port}{route}", timeout=10
                ) as response:
                    assert response.status == 200
                    body = response.read().decode("utf-8")
            assert "testing.sleep_echo" in body  # /runs lists the artifacts
        finally:
            dashboard.stop()


# --------------------------------------------------------------------------- #
# CLI plumbing: hub status, --connect validation
# --------------------------------------------------------------------------- #
class TestHubCli:
    def test_hub_status_command(self, tmp_path, capsys):
        with running_hub(tmp_path) as (_hub, address):
            code = main(["hub", "status", "--connect", f"{address[0]}:{address[1]}"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweeps" in out

    def test_connect_conflicts_with_loopback_flags(self):
        with pytest.raises(ValueError, match="spawn_workers"):
            DistributedBackend(connect=("127.0.0.1", 9), spawn_workers=2)
        with pytest.raises(ValueError, match="priority"):
            DistributedBackend(priority=3)

    def test_cli_connect_rejects_loopback_only_flags(self):
        spec = "examples/scenario_benign_congest.json"
        with pytest.raises(SystemExit):
            main(
                [
                    "scenario",
                    "run",
                    spec,
                    "--connect",
                    "127.0.0.1:9",
                    "--spawn-workers",
                    "2",
                ]
            )
        with pytest.raises(SystemExit):
            main(["scenario", "run", spec, "--priority", "1"])
