"""Tests for the experiment drivers (tiny configurations) and the CLI."""

import math

import pytest

from repro.cli import build_parser, main
from repro.experiments import ALL_EXPERIMENTS
from repro.experiments import (
    e1_local_theorem1,
    e2_congest_theorem2,
    e3_benign,
    e4_impossibility,
    e5_treelike,
    e6_good_set,
    e7_baselines,
    e8_blacklist_ablation,
    e9_adversary_grid,
    e10_message_size,
    e11_estimate_distribution,
    e12_scaling,
)
from repro.experiments.common import ExperimentResult, mean_or_none, median_or_none


class TestCommon:
    def test_mean_and_median_ignore_none(self):
        assert mean_or_none([1.0, None, 3.0]) == 2.0
        assert median_or_none([None, None]) is None

    def test_experiment_result_render_and_column(self):
        result = ExperimentResult(experiment="EX", claim="claim")
        result.add_row(a=1, b=2)
        result.add_row(a=3)
        result.add_note("note")
        text = result.render()
        assert "EX" in text and "claim" in text and "note" in text
        assert result.column("a") == [1, 3]
        assert result.column("b") == [2, None]

    def test_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {f"e{i}" for i in range(1, 13)}


class TestExperimentDrivers:
    """Each driver runs on a tiny configuration and produces sensible rows."""

    def test_e1(self):
        result = e1_local_theorem1.run_experiment(sizes=(64,), trials=1)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row["decided_fraction"] == 1.0
        assert row["fraction_in_band"] >= 0.9

    def test_e1_rejects_unknown_behaviour(self):
        with pytest.raises(ValueError):
            e1_local_theorem1.run_experiment(behaviour="nope")

    def test_e2(self):
        result = e2_congest_theorem2.run_experiment(sizes=(64,), trials=1)
        row = result.rows[0]
        assert row["goodtl_fraction_in_band"] >= 0.8
        assert row["small_message_fraction"] >= 0.9

    def test_e3(self):
        result = e3_benign.run_experiment(sizes=(64,), trials=1)
        row = result.rows[0]
        assert row["decided_fraction"] == 1.0
        assert row["max_estimate"] <= row["ceil_ln_n"] + 1
        assert row["quiescent_rate"] == 1.0

    def test_e4(self):
        result = e4_impossibility.run_experiment(
            base_n=32, copy_counts=(8,), num_trials=1, include_low_expansion_controls=False
        )
        row = result.rows[0]
        assert row["copies_isomorphic"] is True
        assert row["demonstrates_impossibility"] is True

    def test_e5(self):
        result = e5_treelike.run_experiment(sizes=(256,), degrees=(8,), trials=1)
        assert result.rows[0]["within_lemma_bound"] is True

    def test_e6(self):
        result = e6_good_set.run_experiment(sizes=(128,), placements=("random",), trials=1)
        row = result.rows[0]
        assert row["mean_good_fraction"] > 0.7

    def test_e7(self):
        result = e7_baselines.run_experiment(
            n=64, byzantine_counts=(0, 1), include_algorithm2=False
        )
        by_protocol = {}
        for row in result.rows:
            by_protocol.setdefault(row["protocol"], {})[row["byzantine"]] = row
        geo = by_protocol["geometric-max"]
        assert geo[0]["median_relative_error"] < 1.0
        assert geo[1]["median_relative_error"] > 10

    def test_e8(self):
        result = e8_blacklist_ablation.run_experiment(sizes=(64,), trials=1, num_byzantine=2)
        rows = {row["blacklist"]: row for row in result.rows}
        assert rows[True]["far_node_decided_fraction"] > rows[False]["far_node_decided_fraction"]

    def test_e9(self):
        result = e9_adversary_grid.run_experiment(
            n=64, placements=("random",), congest_byzantine=2
        )
        assert len(result.rows) == 3 + 4  # 3 local behaviours + 4 congest behaviours
        for row in result.rows:
            assert row["fraction_in_band"] >= 0.75

    def test_e10(self):
        result = e10_message_size.run_experiment(sizes=(64,))
        row = result.rows[0]
        assert row["congest_small_message_fraction"] == 1.0
        assert row["local_small_message_fraction"] < 0.5
        assert row["local_max_message_ids"] > row["congest_max_message_ids"]

    def test_e11(self):
        result = e11_estimate_distribution.run_experiment(sizes=(64,), trials=1)
        row = result.rows[0]
        assert row["max_value"] <= row["ceil_ln_n"] + 1
        assert row["spread_factor"] is None or row["spread_factor"] <= 3

    def test_e12(self):
        result = e12_scaling.run_experiment(
            local_sizes=(64, 128), congest_sizes=(64,), congest_byzantine_counts=(1,)
        )
        assert any("Algorithm 1 fit" in note for note in result.notes)
        assert any("Algorithm 2 fit" in note for note in result.notes)


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--n", "32", "--algorithm", "local"])
        assert args.n == 32

    def test_run_local_command(self, capsys):
        code = main(["run", "--algorithm", "local", "--n", "64", "--seed", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "decided_fraction" in out

    def test_run_congest_with_adversary(self, capsys):
        code = main([
            "run", "--algorithm", "congest", "--n", "64", "--byzantine", "2",
            "--adversary", "beacon-flood", "--seed", "1", "--max-rounds", "400",
        ])
        assert code == 0
        assert "decided estimates" in capsys.readouterr().out

    def test_run_on_cycle_topology(self, capsys):
        code = main(["run", "--topology", "cycle", "--n", "32", "--max-rounds", "200"])
        assert code == 0

    def test_experiment_command_unknown(self, capsys):
        assert main(["experiment", "e99"]) == 2

    def test_experiment_command_runs(self, capsys, monkeypatch):
        import repro.experiments.e5_treelike as e5

        monkeypatch.setitem(
            ALL_EXPERIMENTS, "e5", e5
        )
        # Patch the driver to a tiny configuration for test speed.
        original = e5.run_experiment
        monkeypatch.setattr(
            e5, "run_experiment", lambda **kw: original(sizes=(256,), degrees=(8,), trials=1)
        )
        assert main(["experiment", "e5"]) == 0
        assert "Lemma 2" in capsys.readouterr().out
