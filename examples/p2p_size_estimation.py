#!/usr/bin/env python3
"""Scenario: a peer-to-peer overlay wants to size itself before reconfiguring.

The paper's introduction motivates Byzantine counting with decentralized
peer-to-peer protocols whose other building blocks (random-walk sampling,
majority gossip, DHT sizing) all need a constant-factor estimate of ``log n``.
This example plays out that scenario:

1. an operator-less overlay of unknown size is built as an ``H(n, d)`` graph;
2. the classical estimators (geometric max-propagation, spanning-tree count)
   are run first -- they are exact while every peer is honest;
3. a small botnet of Byzantine peers joins and re-runs everything, breaking
   the classical estimators while Algorithm 2 keeps a constant-factor answer
   using only small messages.

Run with::

    python examples/p2p_size_estimation.py
"""

from __future__ import annotations

import math

from repro import CongestParameters, hnd_random_regular_graph, run_congest_counting
from repro.adversary import BeaconFloodAdversary, ValueFakingAdversary, random_placement
from repro.analysis.tables import render_table
from repro.baselines import run_geometric_baseline, run_spanning_tree_baseline


def main() -> None:
    n, degree, seed = 512, 8, 7
    graph = hnd_random_regular_graph(n, degree, seed=seed)
    log_n = math.log(n)
    rows = []

    # Phase 1: all peers honest.
    geo = run_geometric_baseline(graph, seed=seed)
    tree = run_spanning_tree_baseline(graph, seed=seed)
    params = CongestParameters(d=degree)
    alg2 = run_congest_counting(graph, params=params, seed=seed)
    rows.append({
        "scenario": "honest overlay",
        "geometric est.": round(geo.median_estimate() or float("nan"), 2),
        "spanning-tree est.": round(tree.median_estimate() or float("nan"), 2),
        "algorithm 2 est.": alg2.outcome.median_estimate(),
        "true ln n": round(log_n, 2),
    })

    # Phase 2: a small botnet joins (3 Byzantine peers).
    byzantine = random_placement(graph, 3, seed=seed + 1)
    geo_attacked = run_geometric_baseline(
        graph, byzantine=byzantine, adversary=ValueFakingAdversary(), seed=seed
    )
    tree_attacked = run_spanning_tree_baseline(
        graph, byzantine=byzantine, adversary=ValueFakingAdversary(), seed=seed
    )
    alg2_attacked = run_congest_counting(
        graph,
        byzantine=byzantine,
        adversary=BeaconFloodAdversary(params),
        params=params,
        seed=seed,
        max_rounds=params.rounds_through_phase(int(math.ceil(log_n)) + 1),
    )
    rows.append({
        "scenario": "3 Byzantine peers",
        "geometric est.": round(geo_attacked.median_estimate() or float("nan"), 2),
        "spanning-tree est.": round(tree_attacked.median_estimate() or float("nan"), 2),
        "algorithm 2 est.": alg2_attacked.outcome.median_estimate(),
        "true ln n": round(log_n, 2),
    })

    print(render_table(rows, title="Estimating ln(n) of a peer-to-peer overlay"))
    print()
    print("The classical estimators report whatever the Byzantine peers inject;")
    print("Algorithm 2's median estimate stays a constant factor of ln n, and "
          f"{alg2_attacked.outcome.decided_fraction():.0%} of honest peers decided.")


if __name__ == "__main__":
    main()
