#!/usr/bin/env python3
"""Scenario: Byzantine counting as a preprocessing step for Byzantine agreement.

Section 1.1 ("Applying our counting protocols") explains that the almost-
everywhere Byzantine agreement protocol of Augustine-Pandurangan-Robinson
needs a constant-factor upper bound on ``log n`` for two sub-routines:

* random walks of length ``Θ(log n)`` (the mixing time) to sample peers, and
* ``Θ(log n)`` rounds of tri-node majority gossip to converge.

This example runs Algorithm 2 first to obtain per-node estimates, scales them
by the constant the analysis prescribes, and then runs the majority-gossip
phase using each node's *own* estimate as its iteration budget -- showing that
the locally held estimates are good enough to drive the downstream protocol to
almost-everywhere agreement without anyone ever knowing ``n``.

Run with::

    python examples/agreement_preprocessing.py
"""

from __future__ import annotations

import math
import random
from typing import Dict

from repro import CongestParameters, hnd_random_regular_graph, run_congest_counting
from repro.adversary import BeaconFloodAdversary, random_placement
from repro.analysis.tables import render_table


def majority_gossip(
    graph,
    byzantine,
    initial_values: Dict[int, int],
    iteration_budget: Dict[int, int],
    seed: int,
) -> Dict[int, int]:
    """The majority sub-protocol of [3]: sample two peers, adopt the majority.

    Honest nodes sample uniformly among their neighbors (a stand-in for the
    mixed random walks of the real protocol); Byzantine nodes always report
    the minority value to every asker.  Each honest node runs for its own
    locally decided number of iterations.
    """
    rng = random.Random(seed)
    values = dict(initial_values)
    max_budget = max(iteration_budget.values(), default=0)
    for iteration in range(max_budget):
        new_values = dict(values)
        for u in graph.nodes():
            if u in byzantine or iteration >= iteration_budget.get(u, 0):
                continue
            samples = []
            for _ in range(2):
                v = rng.choice(graph.neighbors(u))
                # Byzantine peers push the minority value 0.
                samples.append(0 if v in byzantine else values[v])
            triple = samples + [values[u]]
            new_values[u] = 1 if sum(triple) >= 2 else 0
        values = new_values
    return values


def main() -> None:
    n, degree, seed = 256, 8, 5
    graph = hnd_random_regular_graph(n, degree, seed=seed)
    byzantine = random_placement(graph, 3, seed=seed)
    log_n = math.log(n)

    # Step 1: Byzantine counting (no one knows n).
    params = CongestParameters(d=degree)
    counting = run_congest_counting(
        graph,
        byzantine=byzantine,
        adversary=BeaconFloodAdversary(params),
        params=params,
        seed=seed,
        max_rounds=params.rounds_through_phase(int(math.ceil(log_n)) + 1),
    )
    estimates = counting.outcome.estimates()
    # Constant-factor scaling prescribed in Section 1.1: use c times the local
    # estimate as the iteration budget (c = 3 comfortably exceeds the mixing
    # time / convergence constants at these scales).
    budgets = {
        u: int(math.ceil(3 * (rec.estimate or 1.0)))
        for u, rec in counting.outcome.records.items()
        if rec.decided
    }

    # Step 2: binary almost-everywhere agreement seeded with a 60/40 split.
    rng = random.Random(seed)
    initial = {
        u: (1 if rng.random() < 0.6 else 0)
        for u in graph.nodes()
        if u not in byzantine
    }
    final = majority_gossip(graph, byzantine, initial, budgets, seed=seed + 1)
    honest = [u for u in graph.nodes() if u not in byzantine]
    ones = sum(final[u] for u in honest)
    agreement_fraction = max(ones, len(honest) - ones) / len(honest)

    print(render_table([counting.outcome.summary()], title="Step 1: Byzantine counting"))
    print()
    print(render_table(
        [{
            "honest nodes": len(honest),
            "initial majority": "1",
            "nodes agreeing on majority after gossip": f"{agreement_fraction:.1%}",
            "median iteration budget (3x estimate)": sorted(budgets.values())[len(budgets) // 2],
        }],
        title="Step 2: majority gossip driven by the locally decided estimates",
    ))
    print()
    print("Almost-everywhere agreement is reached using only the counting "
          "protocol's local outputs -- no node ever knew n or log n exactly.")


if __name__ == "__main__":
    main()
