#!/usr/bin/env python3
"""Quickstart: count an unknown network in the presence of Byzantine nodes.

Builds an ``H(n, d)`` random regular peer-to-peer overlay, corrupts a handful
of nodes with the beacon-flooding adversary, runs both of the paper's
algorithms, and prints what each honest node decided.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import math

from repro import (
    CongestParameters,
    LocalParameters,
    hnd_random_regular_graph,
    run_congest_counting,
    run_local_counting,
)
from repro.adversary import BeaconFloodAdversary, FakeTopologyAdversary, random_placement
from repro.analysis.tables import render_table


def main() -> None:
    n, degree, seed = 256, 8, 42
    graph = hnd_random_regular_graph(n, degree, seed=seed)
    print(f"Network: {graph.name} with n={n} nodes (ln n = {math.log(n):.2f}) -- "
          "the protocols never see n.\n")

    byzantine = random_placement(graph, 3, seed=seed)
    print(f"Corrupting {len(byzantine)} nodes: {sorted(byzantine)}\n")

    # ----------------------------------------------------------------- #
    # Algorithm 1: deterministic, LOCAL model (large messages).
    # ----------------------------------------------------------------- #
    local_run = run_local_counting(
        graph,
        byzantine=byzantine,
        adversary=FakeTopologyAdversary(),
        params=LocalParameters(gamma=0.7, max_degree=degree),
        seed=seed,
    )
    print(render_table([local_run.outcome.summary()], title="Algorithm 1 (deterministic LOCAL)"))
    print()

    # ----------------------------------------------------------------- #
    # Algorithm 2: randomized, small messages (CONGEST-style).
    # ----------------------------------------------------------------- #
    params = CongestParameters(d=degree)
    congest_run = run_congest_counting(
        graph,
        byzantine=byzantine,
        adversary=BeaconFloodAdversary(params),
        params=params,
        seed=seed,
        max_rounds=params.rounds_through_phase(int(math.ceil(math.log(n))) + 1),
    )
    print(render_table([congest_run.outcome.summary()], title="Algorithm 2 (randomized CONGEST)"))
    print()
    histogram = congest_run.outcome.estimate_histogram()
    print(render_table(
        [{"estimate of ln(n)": k, "honest nodes": v} for k, v in histogram.items()],
        title="Algorithm 2: decided estimates (true ln n = %.2f)" % math.log(n),
    ))


if __name__ == "__main__":
    main()
