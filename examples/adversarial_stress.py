#!/usr/bin/env python3
"""Scenario: stress both algorithms against every shipped adversary.

Sweeps the placement × behaviour grid of the adversary framework against the
two counting algorithms on a single topology, printing how the guarantee
(fraction of far-from-Byzantine nodes with a constant-factor estimate)
holds up.  This is a smaller interactive version of experiment E9.

Run with::

    python examples/adversarial_stress.py
"""

from __future__ import annotations

import math

from repro import CongestParameters, LocalParameters, hnd_random_regular_graph
from repro.adversary import (
    BeaconFloodAdversary,
    ContinueFloodAdversary,
    FakeTopologyAdversary,
    InconsistentTopologyAdversary,
    PathTamperAdversary,
    SilentAdversary,
    clustered_placement,
    random_placement,
    spread_placement,
)
from repro.analysis.tables import render_table
from repro.core.congest_counting import run_congest_counting
from repro.core.local_counting import run_local_counting
from repro.graphs.expansion import good_set
from repro.graphs.neighborhoods import ball_of_set


def main() -> None:
    n, degree, seed = 128, 8, 11
    graph = hnd_random_regular_graph(n, degree, seed=seed)
    log_n = math.log(n)
    placements = {
        "random": random_placement,
        "clustered": clustered_placement,
        "spread": spread_placement,
    }
    rows = []

    # Algorithm 1 under its adversaries (4 Byzantine nodes, gamma = 0.7).
    local_params = LocalParameters(gamma=0.7, max_degree=degree)
    for placement_name, place in placements.items():
        byz = place(graph, 4, seed=seed)
        for behaviour_name, adversary in (
            ("silent", SilentAdversary()),
            ("fake-topology", FakeTopologyAdversary()),
            ("inconsistent", InconsistentTopologyAdversary()),
        ):
            evaluation = good_set(graph, byz, 0.7)
            run = run_local_counting(
                graph,
                byzantine=byz,
                adversary=adversary,
                params=local_params,
                seed=seed,
                evaluation_set=evaluation,
            )
            rows.append({
                "algorithm": "local",
                "placement": placement_name,
                "behaviour": behaviour_name,
                "good nodes in band": round(
                    run.outcome.fraction_within_band(0.35, 1.6), 2
                ),
                "median estimate": run.outcome.median_estimate(),
                "rounds": run.outcome.max_decision_round(),
            })

    # Algorithm 2 under its adversaries (3 Byzantine nodes).
    params = CongestParameters(d=degree)
    budget = params.rounds_through_phase(int(math.ceil(log_n)) + 1)
    for placement_name, place in placements.items():
        byz = place(graph, 3, seed=seed)
        contaminated = ball_of_set(graph, byz, 1)
        for behaviour_name, adversary in (
            ("silent", SilentAdversary()),
            ("beacon-flood", BeaconFloodAdversary(params)),
            ("path-tamper", PathTamperAdversary(params)),
            ("continue-flood", ContinueFloodAdversary(params)),
        ):
            run = run_congest_counting(
                graph,
                byzantine=byz,
                adversary=adversary,
                params=params,
                seed=seed,
                max_rounds=budget,
            )
            outcome = run.outcome
            far = [u for u in outcome.records if u not in contaminated]
            in_band = (
                sum(
                    1 for u in far
                    if outcome.records[u].within(0.35 * log_n, 1.6 * log_n)
                ) / len(far)
                if far else 0.0
            )
            rows.append({
                "algorithm": "congest",
                "placement": placement_name,
                "behaviour": behaviour_name,
                "good nodes in band": round(in_band, 2),
                "median estimate": outcome.median_estimate(),
                "rounds": outcome.max_decision_round(),
            })

    print(render_table(rows, title=f"Adversarial stress grid on {graph.name} (ln n = {log_n:.2f})"))


if __name__ == "__main__":
    main()
